"""SCIP — Smart Cache Insertion and Promotion policy (Algorithm 1).

The paper's headline contribution.  SCIP unifies the insertion policy (where
a *missing* object enters the LRU queue) and the promotion policy (where a
*hit* object is re-placed): a hit is treated as a special missing object —
silently removed (``C.REMOVE``, no history record) and re-inserted — and one
learned model decides between the MRU and LRU positions for both cases.

The model has two coupled layers, both driven by the history (shadow) lists
``H_m`` / ``H_l`` of §3.2:

**Global layer (Algorithm 1 verbatim).**  A two-expert MAB holds execution
probabilities ``ω_m + ω_l = 1``.  A ghost hit in ``H_m`` (an object whose
last placement was MRU, evicted, now re-requested — i.e. the placement
bought a full cache traversal and no hit) penalises the MRU expert,
``ω_m ← ω_m·e^{−λ}``; a ghost hit in ``H_l`` penalises the LRU expert.
Objects with no history are placed by ``SELECT`` — Bernoulli(ω_m).  λ
follows Algorithm 2 (gradient-based stochastic hill climbing with random
restarts), reacting to hit-rate trends every ``update_interval`` requests.

**Per-object layer (§3.2's position adjustment + §5.1's hit token).**
"If a missing object is hit in two lists, the insertion position of the
object should be adjusted."  The history entry carries the evicted tenure's
hit token, which disambiguates the episode kind, and the adjustment must
*persist across episodes* for the recurring populations the paper targets
(A-ZROs, A-P-ZROs — Figures 1(c)/(f)):

====================================  =======================================
ghost evidence                        action for this insertion
====================================  =======================================
``H_m``, token False                  confirmed recurring **ZRO** — insert at
                                      LRU, remember the denial (``DENIED``)
``H_m``, token True                   **P-ZRO** pattern (earns hits, dies
                                      right after) — insert at MRU, flag as
                                      suspect: its *next hit* is demoted
``H_l``, flag ``DENIED``, token F     the denial was right (still unused at
                                      the tail) — keep denying, no penalty
``H_l``, flag ``DENIED``, token T     it was hit even at the tail — release:
                                      insert at MRU, penalise ω_l
``H_l``, flag ``DEMOTED``             the demotion was right (died at the
                                      tail after its hit) — re-arm: MRU +
                                      suspect, no penalty
``H_l``, flag ``NORMAL``              a bimodal LRU insertion threw away a
                                      comeback — insert at MRU, penalise ω_l
====================================  =======================================

On a **hit** of a flagged suspect, the object is demoted to the LRU position
(the unified "insert the hit object as if missing") and the flag is
consumed — if it is hit again regardless, the suspicion was wrong and normal
promotion resumes.  Unflagged hits re-insert by the bimodal draw, which in
ZRO-light phases keeps SCIP at classic LRU promotion.

Victim selection stays plain LRU — SCIP is an insertion/promotion policy;
the wrappers in :mod:`repro.core.enhance` splice it under other victim
selection rules (LRU-K, LRB) for the Figure 12 experiment.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cache.base import LRU_POS, MRU_POS, QueueCache
from repro.cache.queue import Node
from repro.core.history import HistoryList
from repro.core.learning import LAMBDA_MAX, LAMBDA_MIN, LearningRateController
from repro.core.mab import PositionBandit
from repro.sim.request import Request

__all__ = ["SCIPCache", "NORMAL", "DENIED", "DEMOTED", "SUSPECT", "CLEARED"]

#: Episode-kind flags stored in history entries and (as a bitmask with
#: SUSPECT) in ``Node.data``.
NORMAL = 0
DENIED = 1    # inserted at LRU as a recognised recurring ZRO
DEMOTED = 2   # demoted on a hit as a recognised P-ZRO
SUSPECT = 4   # next hit should be demoted (node-only bit)
CLEARED = 3   # a past P-ZRO suspicion was disproved: do not re-arm


class SCIPCache(QueueCache):
    """Smart Cache Insertion and Promotion over an LRU queue.

    Parameters
    ----------
    capacity:
        Cache capacity in bytes.
    history_fraction:
        Byte budget of *each* history list as a fraction of the cache.
        The paper says "logically half of the real cache"; at production
        (TDC) scale a half-cache shadow list spans hours of evictions and
        covers the recurrence periods of ZRO traffic.  At simulator scale a
        literal 0.5 only reaches ~1.5 cache lifetimes back, so the default
        here preserves the *reach in cache lifetimes* rather than the byte
        ratio (see DESIGN.md, substitutions).  Lists store metadata only;
        actual memory is ~32 B per entry either way.
    update_interval:
        ``i`` in Algorithm 1 — requests between ``UPDATELR`` calls.
    initial_lambda:
        Starting learning rate (restarts redraw from [0.001, 1]).
    initial_w_mru:
        Starting MRU-expert weight (0.9: stay near the LRU deployment SCIP
        replaces until ghost evidence accumulates).
    escape:
        Bimodal reconciliation probability: a recognised ZRO (or a re-armed
        P-ZRO suspicion) escapes its treatment with this probability and
        gets a full MRU tenure, so misjudged objects recover in an expected
        ``1/escape`` episodes (§1: BIP "ensures that suspected ZROs and
        P-ZROs are given a chance to be accessed, thereby reconciling
        possible misjudgments").
    per_object:
        Enable the §3.2 per-object position-adjustment layer (denials,
        suspicions, gap tests).  ``False`` runs Algorithm 1 *literally*:
        ghost hits only update the global ω pair and every placement comes
        from ``SELECT`` — the ablation quantifying what the per-object
        interpretation adds (DESIGN.md §7.1).
    use_hit_token:
        Use the §5.1 hit token carried in history entries to separate ZRO
        from P-ZRO episodes.  ``False`` treats every long-gap ``H_m`` ghost
        as a ZRO (no suspicion machinery).
    seed:
        Seeds both the γ draws and λ restarts; experiments are deterministic.
    """

    name = "SCIP"

    def __init__(
        self,
        capacity: int,
        history_fraction: float = 32.0,
        update_interval: int = 1000,
        initial_lambda: float = 0.1,
        initial_w_mru: float = 0.9,
        escape: float = 1 / 8,
        deny_gap_factor: float = 2.5,
        promote_threshold: float = 0.0,
        per_object: bool = True,
        use_hit_token: bool = True,
        unlearn_limit: int = 10,
        seed: int = 0,
    ):
        super().__init__(capacity)
        if history_fraction < 0:
            raise ValueError(f"history_fraction must be >= 0, got {history_fraction}")
        if update_interval < 1:
            raise ValueError(f"update_interval must be >= 1, got {update_interval}")
        if not 0.0 <= escape <= 1.0:
            raise ValueError(f"escape must be in [0, 1], got {escape}")
        self.escape = escape
        self.seed = seed
        rng = random.Random(seed)
        self._rng = rng
        self.h_m = HistoryList(int(capacity * history_fraction))
        self.h_l = HistoryList(int(capacity * history_fraction))
        self.bandit = PositionBandit(initial_w_mru=initial_w_mru, rng=rng)
        self.lr = LearningRateController(
            initial=initial_lambda, unlearn_limit=unlearn_limit, rng=rng
        )
        self.update_interval = update_interval
        # Windowed hit-rate tracking for Π_t / Π_{t-i}.
        self._win_hits = 0
        self._win_reqs = 0
        self._prev_hit_rate = 0.0
        # Diagnostics.
        self.ghost_hits_m = 0
        self.ghost_hits_l = 0
        self.zro_denials = 0
        self.pzro_demotions = 0
        self.deny_gap_factor = deny_gap_factor
        self.promote_threshold = promote_threshold
        self.per_object = per_object
        self.use_hit_token = use_hit_token
        # EWMA of full-queue traversal time (MRU insertion -> eviction), the
        # yardstick the return-gap test compares against.  The starting
        # value only matters for the first few hundred evictions.
        self._tenure_ewma = 1000.0
        # Per-object P-ZRO confidence: +1 per confirmed demotion (died at
        # the tail, returned a cache-lifetime later), −2 per disproof (the
        # demotion forfeited a quick follow-up).  Suspicion only arms at
        # non-negative confidence, so objects whose hits usually have
        # successors stop being gambled on, while consistent
        # single-hit-then-die objects stay treated.
        self._pzro_conf: dict = {}
        # Per-miss transient state set by the ghost lookup.
        self._forced_pos: Optional[int] = None
        self._insert_flags = NORMAL

    # -- observability -----------------------------------------------------------
    def attach_probe(self, probe) -> None:
        """Attach the probe to the whole learner stack: SCIP's own hook
        points (``ghost_hit``, ``episode_transition``, ``admit``/``evict``)
        plus the bandit's ``weight_update`` and the λ controller's
        ``lambda_update``/``lambda_restart``."""
        super().attach_probe(probe)
        self.bandit.attach_probe(probe)
        self.lr.attach_probe(probe)

    def detach_probe(self) -> None:
        super().detach_probe()
        self.bandit.detach_probe()
        self.lr.detach_probe()

    # -- Algorithm 1 main loop ---------------------------------------------------
    def request(self, req: Request) -> bool:
        hit = super().request(req)
        self._win_reqs += 1
        if hit:
            self._win_hits += 1
        if self._win_reqs >= self.update_interval:
            hit_rate = self._win_hits / self._win_reqs
            self.lr.update(hit_rate, self._prev_hit_rate)
            self._prev_hit_rate = hit_rate
            self._win_hits = 0
            self._win_reqs = 0
            # Bound the confidence map to metadata scale (ghost-list order).
            cap_entries = 4 * (len(self.h_m) + len(self.h_l)) + 4096
            if len(self._pzro_conf) > cap_entries:
                known = set(self.h_m.keys()) | set(self.h_l.keys()) | set(self.index)
                self._pzro_conf = {
                    k: v for k, v in self._pzro_conf.items() if k in known
                }
        return hit

    # -- promotion (Algorithm 1, L23-25): remove + unified re-insert ----------------
    def _on_hit(self, node: Node, req: Request) -> None:
        self.queue.unlink(node)  # C.REMOVE — not recorded anywhere
        flags = node.data or NORMAL
        if flags & SUSPECT:
            # P-ZRO suspect: history says this object's tenures die right
            # after a hit.  Treat the hit as the special missing object it
            # is about to become: LRU position.  Consume the suspicion so a
            # surviving re-hit proves us wrong and restores promotion.
            node.data = DEMOTED
            node.inserted_mru = False
            self.queue.push_lru(node)
            self.pzro_demotions += 1
            if self._probe is not None:
                self._probe.emit("episode_transition", key=node.key, to="DEMOTED")
            return
        if flags & DEMOTED:
            # Re-hit while demoted at the tail: the suspicion was wrong.
            c = self._pzro_conf.get(node.key, 0)
            self._pzro_conf[node.key] = max(c - 2, -4)
            if self._probe is not None:
                self._probe.emit("episode_transition", key=node.key, to="RELEASED")
        node.data = flags & ~DENIED  # a hit clears ZRO state
        if self.bandit.select_promotion(self.promote_threshold) == MRU_POS:
            node.inserted_mru = True
            node.stamp = self.clock  # promotion restarts the traversal clock
            self.queue.push_mru(node)
        else:
            node.inserted_mru = False
            self.queue.push_lru(node)

    # -- miss path: ghost evidence → weights + per-object adjustment -----------------
    def _miss(self, req: Request) -> None:
        self._forced_pos = None
        self._insert_flags = NORMAL
        lam = self.lr.value
        entry = self.h_m.pop(req.key)
        if entry is not None:
            _, hits, flag, etime = entry
            self.ghost_hits_m += 1
            if self._probe is not None:
                self._probe.emit(
                    "ghost_hit",
                    list="m",
                    key=req.key,
                    hits=hits,
                    flag=flag,
                    age=self.clock - etime,
                )
            if not self.per_object:
                # Algorithm 1 literal: global update only (L6-8).
                self.bandit.penalize_mru(lam)
            elif not self.use_hit_token and self._long_gap(etime):
                # Token-blind variant: every long-gap H_m ghost is a ZRO.
                self.bandit.penalize_mru(lam)
                self._deny(req.key)
            elif not self.use_hit_token:
                self._forced_pos = MRU_POS
            elif not self._long_gap(etime):
                # Returned within a cache lifetime of its eviction: the
                # tenure was merely unlucky, the object is cacheable.  Give
                # it the MRU position; no evidence against the MRU expert.
                self._forced_pos = MRU_POS
            elif hits == 0:
                # Confirmed recurring ZRO: the MRU placement bought a full
                # traversal and nothing else.  Penalise the expert and deny
                # the position.
                self.bandit.penalize_mru(lam)
                self._deny(req.key)
            elif hits == 1:
                # Single-hit-then-die signature: the one hit was a P-ZRO
                # event.  The *promotion* wasted a traversal — penalise the
                # MRU expert and arm the suspicion for the next tenure.
                # A CLEARED record means a past demotion of this object was
                # disproved (it missed again right after) — don't gamble
                # again except for the occasional bimodal retry.
                self.bandit.penalize_mru(lam)
                self._forced_pos = MRU_POS
                if self._pzro_conf.get(req.key, 0) >= 0:
                    # Negative confidence = past demotions of this object
                    # forfeited follow-up hits; it is permanently released
                    # to normal promotion (the conservative side of the
                    # trade — a wrong demotion costs hits, a missed one
                    # only costs space).
                    self._suspect(req.key)
            else:
                # Multi-hit tenure: the object earns its keep while
                # resident; demoting any one hit would forfeit the rest.
                self._forced_pos = MRU_POS
        else:
            entry = self.h_l.pop(req.key)
            if entry is not None:
                _, hits, flag, etime = entry
                if self._probe is not None:
                    self._probe.emit(
                        "ghost_hit",
                        list="l",
                        key=req.key,
                        hits=hits,
                        flag=flag,
                        age=self.clock - etime,
                    )
                if not self.per_object:
                    self.bandit.penalize_lru(lam)
                    self.ghost_hits_l += 1
                elif flag == DENIED and hits == 0 and self._long_gap(etime):
                    # Denial confirmed (unused at the tail AND the return
                    # gap still exceeds a cache lifetime): sustain it.  The
                    # confirmation is also regime evidence — an MRU tenure
                    # would have been wasted — so the MRU expert pays.
                    self.bandit.penalize_mru(lam)
                    self._deny(req.key)
                elif flag == DEMOTED and self._long_gap(etime):
                    # Demotion confirmed (died at the tail right after its
                    # hit, returning only after a cache lifetime): raise the
                    # object's confidence, re-arm, and charge the MRU expert.
                    c = self._pzro_conf.get(req.key, 0)
                    self._pzro_conf[req.key] = min(c + 1, 3)
                    self.bandit.penalize_mru(lam)
                    self._forced_pos = MRU_POS
                    self._suspect(req.key)
                else:
                    # Release to the MRU position.  Only a NORMAL-flag entry
                    # indicts the LRU expert — a DENIED/DEMOTED entry's tail
                    # placement was the per-object machinery's decision, not
                    # the expert's, so releasing it carries no global signal.
                    # A quick comeback after a DEMOTED death means the
                    # demotion forfeited a real follow-up hit: mark the
                    # object CLEARED so the suspicion is not re-armed.
                    if flag == NORMAL:
                        self.bandit.penalize_lru(lam)
                        self.ghost_hits_l += 1
                    elif flag == DEMOTED:
                        # Quick comeback after a demotion death: the
                        # demotion forfeited a real follow-up hit.
                        c = self._pzro_conf.get(req.key, 0)
                        self._pzro_conf[req.key] = max(c - 2, -4)
                    self._forced_pos = MRU_POS
        super()._miss(req)

    def _long_gap(self, evict_time: int) -> bool:
        """Return-gap test: did the object stay away for longer than the
        cache could ever have held it?  Only such objects are ZRO/P-ZRO
        treatable — quick returners are marginal objects worth caching."""
        return (self.clock - evict_time) > self.deny_gap_factor * self._tenure_ewma

    def _deny(self, key: int) -> None:
        """Apply (or sustain) a ZRO denial, with bimodal escape."""
        if self._rng.random() < self.escape:
            self._forced_pos = MRU_POS  # reconciliation tenure
            self._insert_flags = NORMAL
            if self._probe is not None:
                self._probe.emit("episode_transition", key=key, to="ESCAPED")
            return
        self._forced_pos = LRU_POS
        self._insert_flags = DENIED
        self.zro_denials += 1
        if self._probe is not None:
            self._probe.emit("episode_transition", key=key, to="DENIED")

    def _suspect(self, key: int) -> None:
        """Arm (or re-arm) a P-ZRO suspicion, with bimodal escape."""
        if self._rng.random() < self.escape:
            self._insert_flags = NORMAL
            if self._probe is not None:
                self._probe.emit("episode_transition", key=key, to="ESCAPED")
            return
        self._insert_flags = SUSPECT
        if self._probe is not None:
            self._probe.emit("episode_transition", key=key, to="SUSPECT")

    def _insert_position(self, req: Request) -> int:
        if self._forced_pos is not None:
            pos = self._forced_pos
            self._forced_pos = None
            return pos
        return self.bandit.select()

    def _on_insert(self, node: Node, req: Request) -> None:
        node.data = self._insert_flags
        node.stamp = self.clock
        self._insert_flags = NORMAL

    # -- eviction → history routing (L14-19) --------------------------------------------
    def _on_evict(self, node: Node) -> None:
        flags = node.data or NORMAL
        if flags & DENIED:
            flag = DENIED
        elif flags & DEMOTED:
            flag = DEMOTED
        else:
            flag = NORMAL
        if node.inserted_mru:
            # A full MRU->LRU traversal measures the cache lifetime.
            self._tenure_ewma += 0.02 * ((self.clock - node.stamp) - self._tenure_ewma)
            self.h_m.add(
                node.key, node.size, was_hit=node.hit_token or 0, flag=flag, time=self.clock
            )
        else:
            self.h_l.add(
                node.key, node.size, was_hit=node.hit_token or 0, flag=flag, time=self.clock
            )

    # -- introspection ------------------------------------------------------------------
    @property
    def w_mru(self) -> float:
        """Current MRU-expert probability ω_m."""
        return self.bandit.w_mru

    @property
    def learning_rate(self) -> float:
        """Current λ."""
        return self.lr.value

    def metadata_bytes(self) -> int:
        return (
            110 * len(self)
            + self.h_m.metadata_bytes()
            + self.h_l.metadata_bytes()
            + 16 * len(self._pzro_conf)
            + 64  # ω pair, λ state, window counters
        )

    def check_invariants(self) -> None:
        super().check_invariants()
        self.h_m.check_invariants()
        self.h_l.check_invariants()
        assert abs(self.bandit.w_mru + self.bandit.w_lru - 1.0) < 1e-9
        assert 0.0 <= self.bandit.w_mru <= 1.0 and 0.0 <= self.bandit.w_lru <= 1.0
        assert LAMBDA_MIN <= self.lr.value <= LAMBDA_MAX, self.lr.value
        # FIFO history lists must respect their byte budgets at all times.
        assert self.h_m.bytes <= self.h_m.capacity or self.h_m.capacity == 0
        assert self.h_l.bytes <= self.h_l.capacity or self.h_l.capacity == 0
