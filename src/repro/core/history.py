"""History (shadow) lists ``H_m`` and ``H_l`` — §3.2 of the paper.

Each list records **metadata only** of objects evicted from the real cache,
split by where they had last been placed: ``H_m`` for MRU-position
placements, ``H_l`` for LRU-position placements.  Logically each list's
capacity is *half the real cache* (in bytes of described objects); entries
age out FIFO.

Every entry carries the evicted object's **hit token** (§2.3, §5.1: TDC's
inode records whether the object was hit while resident).  The token is what
lets a ghost hit in ``H_m`` distinguish the two episode kinds the paper
cares about:

* token ``0`` — the tenure ended with *zero* hits: a confirmed **ZRO
  episode** (inserted at MRU, traversed the cache unused);
* token ``1`` — the object was hit exactly once and died right after: that
  hit was a **P-ZRO event** (the single-hit-then-die signature);
* token ``>= 2`` — a multi-hit tenure: the object earns its keep.

Entries also carry the eviction clock so a ghost hit can measure the
object's *return gap* against the cache lifetime.

Semantics used by Algorithm 1:

* ``ADD(victim)`` — append at the MRU end of the list, evicting the list's
  own LRU-end entries if the byte budget is exceeded (Algorithm 1, L34-38);
* a *ghost hit* — a missing object found in a list — triggers a weight
  update and deletes the entry (L6-11).

The production deployment note (§5.1) says each entry stores the object key
(a string) and size (a long); :meth:`metadata_bytes` charges accordingly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

__all__ = ["HistoryList"]


class HistoryList:
    """A FIFO ghost list with a byte budget.

    Parameters
    ----------
    capacity:
        Byte budget — the summed sizes of the *described* objects (the list
        itself only stores metadata; the budget bounds how far back in
        eviction history the list can see, mirroring "half the real cache").
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"history capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.bytes = 0
        # key -> (size, was_hit, flag, time), in FIFO order (oldest first).
        # ``flag`` carries the episode kind (see repro.core.scip: NORMAL /
        # DENIED / DEMOTED) and ``time`` the eviction clock, so a ghost hit
        # can resume the object's state and measure its return gap.
        self._entries: "OrderedDict[int, Tuple[int, bool, int, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def add(
        self, key: int, size: int, was_hit: bool = False, flag: int = 0, time: int = 0
    ) -> None:
        """Record an evicted object (paper's ``ADD``): append at the MRU end,
        trimming the LRU end to the byte budget first.  Re-adding an existing
        key refreshes it (moves to MRU end, updates size and token)."""
        if key in self._entries:
            self.bytes -= self._entries.pop(key)[0]
        while self._entries and self.bytes + size > self.capacity:
            _, (old_size, _, _, _) = self._entries.popitem(last=False)
            self.bytes -= old_size
        if size <= self.capacity:
            self._entries[key] = (size, was_hit, flag, time)
            self.bytes += size

    def delete(self, key: int) -> bool:
        """Paper's ``DELETE``: drop all information for ``key``.  Returns
        whether the key was present (i.e. whether this was a ghost hit)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.bytes -= entry[0]
        return True

    def pop(self, key: int) -> Optional[Tuple[int, bool, int, int]]:
        """Ghost lookup returning the entry ``(size, was_hit, flag, time)``
        and deleting it, or ``None`` when absent.  SCIP's miss path uses this
        to read the hit token, episode kind and eviction time of the ended
        episode."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        self.bytes -= entry[0]
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self.bytes = 0

    def keys(self) -> list:
        """FIFO-ordered keys (oldest first); diagnostics only."""
        return list(self._entries)

    def metadata_bytes(self) -> int:
        """Real memory the list costs: ~32 B per entry (key string + long)."""
        return 32 * len(self._entries)

    def check_invariants(self) -> None:
        assert self.bytes == sum(s for s, _, _, _ in self._entries.values()), (
            "byte accounting drift"
        )
        assert self.bytes <= self.capacity or not self._entries, "budget overflow"
