"""The paper's contribution: SCIP, its SCI ablation, and the enhancement
wrappers that splice SCIP under other victim-selection policies."""

from repro.core.enhance import ASCIPLRB, ASCIPLRUK, SCIPLRB, SCIPLRUK, enhance
from repro.core.history import HistoryList
from repro.core.learning import LearningRateController
from repro.core.mab import PositionBandit
from repro.core.sci import SCICache
from repro.core.scip import SCIPCache

__all__ = [
    "SCIPCache",
    "SCICache",
    "HistoryList",
    "LearningRateController",
    "PositionBandit",
    "SCIPLRUK",
    "SCIPLRB",
    "ASCIPLRUK",
    "ASCIPLRB",
    "enhance",
]
