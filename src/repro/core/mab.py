"""Two-expert Multi-Armed Bandit over insertion positions — §2.3 / §3.3.

SCIP frames insertion-position choice as a bandit with exactly two *experts*:

* **MIP** — MRU Insertion Policy (insert at the head), and
* **LIP** — LRU Insertion Policy (insert at the tail),

holding execution probabilities ``ω_m + ω_l = 1``.  Ghost hits in the
history lists are the (negative) reward signal: a ghost hit in ``H_m`` means
an MRU insertion traversed the whole cache unused (a ZRO/P-ZRO) — penalise
MIP; a ghost hit in ``H_l`` means an LRU insertion threw away a future hit —
penalise LIP.  Penalties are multiplicative, ``ω ← ω·e^{−λ}`` (Algorithm 1,
L8/L11), followed by normalisation — the EXP3-style update LeCaR introduced
for cache experts, which the paper adopts.

``select`` implements Algorithm 1's ``SELECT``: draw γ ∈ [0,1] and pick MIP
iff ``ω_m > γ`` — i.e. a Bernoulli(ω_m) bimodal insertion.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.cache.base import LRU_POS, MRU_POS

__all__ = ["PositionBandit"]


class PositionBandit:
    """ω_m/ω_l weight pair with multiplicative penalties and BIP selection.

    Parameters
    ----------
    initial_w_mru:
        Starting ω_m (default 0.9: begin close to plain LRU behaviour so the
        policy only deviates once evidence of ZROs/P-ZROs accumulates —
        matching the deployment story of replacing LRU in TDC).
    rng:
        Seeded RNG used for the γ draws.
    """

    #: Observability hook (see :class:`repro.obs.probe.Probe`); class-level
    #: no-op until :meth:`attach_probe` shadows it.
    _probe = None

    def __init__(
        self,
        initial_w_mru: float = 0.9,
        rng: Optional[random.Random] = None,
        mode: str = "threshold",
    ):
        if not 0.0 < initial_w_mru < 1.0:
            raise ValueError(f"initial ω_m must be in (0, 1), got {initial_w_mru}")
        if mode not in ("threshold", "bernoulli"):
            raise ValueError(f"mode must be 'threshold' or 'bernoulli', got {mode!r}")
        self.w_mru = initial_w_mru
        self.w_lru = 1.0 - initial_w_mru
        self.rng = rng or random.Random(0)
        self.mode = mode
        self.penalties_mru = 0
        self.penalties_lru = 0

    # -- weight updates (Algorithm 1, L6-13) ----------------------------------
    def _normalize(self) -> None:
        total = self.w_mru + self.w_lru
        if total <= 0.0:  # pragma: no cover - defensive; e^{-λ} keeps ω > 0
            self.w_mru = self.w_lru = 0.5
            return
        self.w_mru /= total
        self.w_lru = 1.0 - self.w_mru
        # Keep both experts alive: a weight pinned at 0 could never recover
        # under multiplicative updates (standard EXP3 exploration floor).
        floor = 0.01
        if self.w_mru < floor:
            self.w_mru = floor
            self.w_lru = 1.0 - floor
        elif self.w_lru < floor:
            self.w_lru = floor
            self.w_mru = 1.0 - floor

    def penalize_mru(self, lam: float) -> None:
        """Ghost hit in ``H_m``: the MRU expert wasted cache space."""
        self.w_mru *= math.exp(-lam)
        self.penalties_mru += 1
        self._normalize()
        if self._probe is not None:
            self._probe.emit(
                "weight_update", side="mru", lam=lam, w_mru=self.w_mru, w_lru=self.w_lru
            )

    def penalize_lru(self, lam: float) -> None:
        """Ghost hit in ``H_l``: the LRU expert forfeited a hit."""
        self.w_lru *= math.exp(-lam)
        self.penalties_lru += 1
        self._normalize()
        if self._probe is not None:
            self._probe.emit(
                "weight_update", side="lru", lam=lam, w_mru=self.w_mru, w_lru=self.w_lru
            )

    # -- observability ---------------------------------------------------------
    def attach_probe(self, probe) -> None:
        """Emit ``weight_update`` events (ω pair after each penalty)."""
        self._probe = probe

    def detach_probe(self) -> None:
        self._probe = None

    # -- action selection --------------------------------------------------------
    def select(self) -> int:
        """Pick the insertion position.

        ``threshold`` mode follows §3.1's BIP description — "when α > 0.5,
        BIP will insert the object into the MRU position, otherwise into the
        LRU position" — a deterministic, noise-free switch.  ``bernoulli``
        mode follows Algorithm 1's ``SELECT`` literally (γ ~ U[0,1], MRU iff
        ω_m > γ).  The two coincide in expectation; threshold avoids paying
        the tail-insertion cost on random draws while ω_m is high.
        """
        if self.mode == "threshold":
            return MRU_POS if self.w_mru > 0.5 else LRU_POS
        return MRU_POS if self.w_mru > self.rng.random() else LRU_POS

    def select_promotion(self, threshold: float = 0.2) -> int:
        """Position for a *hit* object (the unified promotion decision).

        Promotion errors are costlier than insertion errors — demoting a
        popular object forfeits its whole hit stream, while a mis-inserted
        miss costs one extra miss — so the LRU position for hits engages
        only deep in a ZRO-storm regime (ω_m below ``threshold``), not at
        the insertion break-even of 0.5.
        """
        if self.mode == "threshold":
            return MRU_POS if self.w_mru > threshold else LRU_POS
        # Bernoulli mode: rescale so the demotion probability reaches 1 only
        # as ω_m → 0 and stays 0 above the threshold.
        if self.w_mru >= threshold:
            return MRU_POS
        return MRU_POS if self.rng.random() < self.w_mru / threshold else LRU_POS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PositionBandit(w_mru={self.w_mru:.4f}, w_lru={self.w_lru:.4f})"
