"""SCI — Smart Cache Insertion (Algorithm 3), the paper's ablation of SCIP.

SCI keeps SCIP's learned *insertion* policy for missing objects but drops
the learned *promotion* policy: a hit is removed and re-inserted **always at
the MRU position** (Algorithm 3, L3-5) — i.e. classic LRU promotion.  The
Figure 7 experiment measures exactly what unifying promotion buys: SCIP's
miss ratio is lower than SCI's by 4.62 / 1.62 / 5.30 points on the three
workloads, attributable to P-ZRO capture.
"""

from __future__ import annotations

from repro.cache.queue import Node
from repro.core.scip import SCIPCache
from repro.sim.request import Request

__all__ = ["SCICache"]


class SCICache(SCIPCache):
    """SCIP minus the promotion policy (hits always promote to MRU)."""

    name = "SCI"

    def _on_hit(self, node: Node, req: Request) -> None:
        # Algorithm 3 L3-5: remove, then insert at MRU unconditionally.
        # The traversal stamp restarts exactly as in SCIP — the tenure
        # estimator measures the queue, not the policy — so the Figure 7
        # comparison isolates the promotion policy alone.
        node.inserted_mru = True
        node.stamp = self.clock
        self.queue.move_to_mru(node)
