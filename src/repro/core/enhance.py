"""SCIP (and ASC-IP) as plug-in enhancers for replacement algorithms — §4.

The paper argues SCIP composes with existing victim-selection policies:
*"users can utilize SCIP to replace their insertion and promotion policies"*
(passive policies) and *"SCIP can be used as a complement to a machine-
learning model to determine the insertion position"* (active policies).
Figure 12 demonstrates it on LRU-K and LRB, with ASC-IP enhancement as the
reference, and this module provides exactly those four hybrids:

* :class:`SCIPLRUK` — LRU-K victim selection under SCIP placement.  LRU-K
  prefers victims with infinite backward K-distance, tie-broken by queue
  order — so SCIP's position control steers exactly the tie-breaking order
  those candidates are examined in.
* :class:`SCIPLRB` — the :class:`~repro.cache.lrb.RelaxedBeladyLearner`
  victim model under SCIP placement; SCIP "follows the memory window of
  LRB" in that both learn from the same bounded past.
* :class:`ASCIPLRUK` / :class:`ASCIPLRB` — the same hosts with ASC-IP's
  size-threshold insertion, the paper's reference enhancer.

SCIP cannot be composed with multi-chain structures (ARC, S4LRU) — the
paper flags this as future work, and :func:`enhance` refuses those hosts.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Optional

from repro.cache.ascip import ASCIPCache
from repro.cache.lrb import RelaxedBeladyLearner
from repro.cache.queue import Node
from repro.core.scip import SCIPCache
from repro.sim.request import Request

__all__ = ["SCIPLRUK", "SCIPLRB", "ASCIPLRUK", "ASCIPLRB", "enhance"]


class _LRUKVictimMixin:
    """LRU-K victim selection over a recency queue.

    Access-time histories live in a side dict (``node.data`` belongs to the
    placement policy), retained past eviction as LRU-K prescribes and pruned
    periodically.
    """

    def _init_lruk(self, k: int = 2, sample: int = 16) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.sample = sample
        self._atimes: Dict[int, deque] = {}

    def _record_access(self, key: int) -> None:
        hist = self._atimes.get(key)
        if hist is None:
            hist = deque(maxlen=self.k)
            self._atimes[key] = hist
        hist.append(self.clock)
        # Bound retained history on churny traces.
        if len(self._atimes) > 4 * max(len(self.index), 1) + 100_000:
            resident = self.index
            self._atimes = {k_: v for k_, v in self._atimes.items() if k_ in resident}

    def _kdist(self, key: int) -> float:
        hist = self._atimes.get(key)
        if hist is None or len(hist) < self.k:
            return math.inf
        return self.clock - hist[0]

    def _choose_victim(self) -> Node:
        best: Optional[Node] = None
        best_d = -1.0
        for i, node in enumerate(self.queue.iter_lru()):
            if i >= self.sample:
                break
            d = self._kdist(node.key)
            if d == math.inf:
                return node
            if d > best_d:
                best_d = d
                best = node
        assert best is not None
        return best


class SCIPLRUK(_LRUKVictimMixin, SCIPCache):
    """LRU-K victim selection + SCIP insertion/promotion (Figure 12)."""

    name = "LRU-K-SCIP"

    def __init__(self, capacity: int, k: int = 2, sample: int = 16, **scip_kwargs):
        super().__init__(capacity, **scip_kwargs)
        self._init_lruk(k=k, sample=sample)

    def request(self, req: Request) -> bool:
        self._record_access(req.key)
        return super().request(req)

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + (8 * self.k + 16) * len(self._atimes)


class ASCIPLRUK(_LRUKVictimMixin, ASCIPCache):
    """LRU-K victim selection + ASC-IP insertion (Figure 12 reference)."""

    name = "LRU-K-ASCIP"

    def __init__(self, capacity: int, k: int = 2, sample: int = 16, **ascip_kwargs):
        super().__init__(capacity, **ascip_kwargs)
        self._init_lruk(k=k, sample=sample)

    def request(self, req: Request) -> bool:
        self._record_access(req.key)
        return super().request(req)


class _LRBVictimMixin:
    """Relaxed-Belady victim selection shared by the LRB hybrids."""

    def _init_lrb(self, **learner_kwargs) -> None:
        self.learner = RelaxedBeladyLearner(**learner_kwargs)

    def _lrb_victim(self) -> Node:
        key = self.learner.choose_victim_key(self.clock)
        if key is None:
            tail = self.queue.tail
            assert tail is not None
            return tail
        return self.index[key]


class SCIPLRB(_LRBVictimMixin, SCIPCache):
    """LRB victim model + SCIP insertion/promotion (Figure 12)."""

    name = "LRB-SCIP"

    def __init__(self, capacity: int, learner_kwargs: Optional[dict] = None, **scip_kwargs):
        super().__init__(capacity, **scip_kwargs)
        self._init_lrb(**(learner_kwargs or {}))

    def request(self, req: Request) -> bool:
        self.learner.on_access(req.key, req.size, self.clock + 1)
        return super().request(req)

    def _on_insert(self, node: Node, req: Request) -> None:
        super()._on_insert(node, req)
        self.learner.track_insert(req.key)

    def _on_evict(self, node: Node) -> None:
        super()._on_evict(node)
        self.learner.track_evict(node.key)

    def _choose_victim(self) -> Node:
        return self._lrb_victim()

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + self.learner.metadata_bytes()


class ASCIPLRB(_LRBVictimMixin, ASCIPCache):
    """LRB victim model + ASC-IP insertion (Figure 12 reference)."""

    name = "LRB-ASCIP"

    def __init__(self, capacity: int, learner_kwargs: Optional[dict] = None, **ascip_kwargs):
        super().__init__(capacity, **ascip_kwargs)
        self._init_lrb(**(learner_kwargs or {}))

    def request(self, req: Request) -> bool:
        self.learner.on_access(req.key, req.size, self.clock + 1)
        return super().request(req)

    def _on_insert(self, node: Node, req: Request) -> None:
        super()._on_insert(node, req)
        self.learner.track_insert(req.key)

    def _on_evict(self, node: Node) -> None:
        super()._on_evict(node)
        self.learner.track_evict(node.key)

    def _choose_victim(self) -> Node:
        return self._lrb_victim()


#: Hosts SCIP can enhance, by name (Figure 12's subjects).
_ENHANCEABLE = {
    "LRU-K": SCIPLRUK,
    "LRB": SCIPLRB,
}

#: Multi-chain hosts the paper explicitly defers to future work (§4).
_MULTI_CHAIN = {"ARC", "S4LRU", "SLRU", "CACHEUS", "SS-LRU"}


def enhance(host_name: str, capacity: int, **kwargs):
    """Build the SCIP-enhanced variant of a named host policy.

    Raises ``ValueError`` for multi-chain hosts, which SCIP does not
    support ("SCIP cannot be well adapted to multi-chain structure
    algorithms, but this is a focus of our future work" — §4).
    """
    if host_name in _MULTI_CHAIN:
        raise ValueError(
            f"SCIP cannot enhance multi-chain policy {host_name!r} (paper §4: future work)"
        )
    try:
        cls = _ENHANCEABLE[host_name]
    except KeyError:
        raise ValueError(
            f"no SCIP enhancement registered for {host_name!r}; "
            f"available: {sorted(_ENHANCEABLE)}"
        ) from None
    return cls(capacity, **kwargs)
