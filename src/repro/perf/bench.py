"""Engine micro-benchmark: replay throughput with a persisted trajectory.

``repro bench`` (or :func:`run_engine_bench`) replays a fixed-seed synthetic
workload through a small policy set on **both** engine paths:

* *legacy* — the per-request rich loop (``MetricsCollector.record`` around
  every ``policy.request`` call), which is exactly the pre-optimization
  replay engine, and
* *fast* — the slim bulk-``replay`` loop the engine now uses by default.

For every policy it reports requests/second on each path, the speedup, and
asserts the two paths produced **identical** miss ratios — a hot run of the
golden-trace gate.  A third measurement replays with an observability probe
attached (``tps_traced``), so the JSON records what tracing costs — and,
by comparing ``tps_fast`` against the previous persisted document
(``headline.fast_tps_prev`` / ``headline.fast_change_vs_prev``), what the
*disabled* instrumentation costs, which must stay within noise.  Results
are written to ``BENCH_engine.json`` so future optimization PRs have a
before/after perf trajectory to extend, not just a point measurement.

The headline number is the LRU speedup: LRU is the pure engine hot path
(dict probe + pointer splice, no policy-specific work), so it isolates what
the replay machinery itself costs.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, Iterable, Mapping, Optional

from repro.sim.engine import simulate
from repro.sim.request import Trace

__all__ = [
    "DEFAULT_BENCH_POLICIES",
    "bench_registry",
    "run_engine_bench",
    "format_bench",
]

#: Policy set replayed by default: the engine baseline, a multi-chain
#: heuristic, and the paper's learned policy.
DEFAULT_BENCH_POLICIES = ("LRU", "ARC", "SCIP")

#: Schema version of ``BENCH_engine.json``; bump on layout changes.
BENCH_SCHEMA = 1


def bench_registry() -> Dict[str, Callable[[int], object]]:
    """Deprecated: use :mod:`repro.cache.registry` instead.

    Returns the unified name → factory map (heuristics plus the paper's
    SCIP/SCI).  Kept as a thin shim so pre-registry callers keep working.
    """
    import warnings

    warnings.warn(
        "repro.perf.bench.bench_registry is deprecated; use "
        "repro.cache.registry.make_policy / available_policies",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.cache.registry import policy_registry

    return policy_registry()


def _best_tps(
    factory: Callable[[int], object],
    trace: Trace,
    capacity: int,
    repeats: int,
    fast: Optional[bool],
    traced: bool = False,
) -> tuple:
    """Best-of-``repeats`` throughput; returns (tps, miss_ratio, byte_mr).

    With ``traced=True`` an observability session (registry recorder, no
    file sink) rides along, which routes the replay through the
    instrumented per-request path — the tracing-cost measurement.
    """
    from repro.obs import ObsConfig

    best = 0.0
    miss_ratio = byte_mr = None
    for _ in range(max(repeats, 1)):
        obs = ObsConfig() if traced else None
        res = simulate(factory(capacity), trace, fast=fast, obs=obs)
        best = max(best, res.tps)
        if miss_ratio is None:
            miss_ratio = res.miss_ratio
            byte_mr = res.byte_miss_ratio
        elif res.miss_ratio != miss_ratio:  # pragma: no cover - determinism gate
            raise AssertionError(
                f"non-deterministic replay: miss_ratio {res.miss_ratio!r} != {miss_ratio!r}"
            )
    return best, miss_ratio, byte_mr


def run_engine_bench(
    policies: Iterable[str] = DEFAULT_BENCH_POLICIES,
    workload: str = "CDN-T",
    n_requests: int = 200_000,
    fraction: float = 0.02,
    repeats: int = 3,
    output: Optional[str] = "BENCH_engine.json",
    quick: bool = False,
    registry: Optional[Mapping[str, Callable[[int], object]]] = None,
) -> dict:
    """Run the engine micro-benchmark and (optionally) persist the result.

    Parameters
    ----------
    policies:
        Policy names to replay (must exist in the unified
        :mod:`repro.cache.registry`).
    workload, n_requests, fraction:
        Fixed-seed synthetic workload and cache size (fraction of its WSS).
    repeats:
        Timing repeats per (policy, path); best-of is reported.
    output:
        Path for ``BENCH_engine.json``; ``None`` skips writing.
    quick:
        Smoke mode for CI: 30 k requests, one repeat (~seconds).
    """
    from repro.traces.cdn import make_workload

    if quick:
        n_requests = min(n_requests, 30_000)
        repeats = 1
    if registry is not None:
        reg = dict(registry)
    else:
        from repro.cache.registry import policy_registry

        reg = policy_registry()
    unknown = [p for p in policies if p not in reg]
    if unknown:
        raise KeyError(f"unknown bench policies {unknown}; available: {sorted(reg)}")

    trace = make_workload(workload, n_requests=n_requests)
    capacity = max(int(trace.working_set_size * fraction), 1)

    results: Dict[str, dict] = {}
    for name in policies:
        factory = reg[name]
        tps_legacy, mr_legacy, bmr_legacy = _best_tps(
            factory, trace, capacity, repeats, fast=False
        )
        tps_fast, mr_fast, bmr_fast = _best_tps(
            factory, trace, capacity, repeats, fast=True
        )
        tps_traced, mr_traced, bmr_traced = _best_tps(
            factory, trace, capacity, repeats, fast=None, traced=True
        )
        if mr_fast != mr_legacy or bmr_fast != bmr_legacy:
            raise AssertionError(
                f"{name}: fast path drifted from legacy path "
                f"(miss_ratio {mr_fast!r} vs {mr_legacy!r}, "
                f"byte_miss_ratio {bmr_fast!r} vs {bmr_legacy!r})"
            )
        if mr_traced != mr_legacy or bmr_traced != bmr_legacy:
            raise AssertionError(
                f"{name}: traced path drifted from legacy path "
                f"(miss_ratio {mr_traced!r} vs {mr_legacy!r})"
            )
        results[name] = {
            "tps_legacy": tps_legacy,
            "tps_fast": tps_fast,
            "tps_traced": tps_traced,
            "speedup": tps_fast / tps_legacy if tps_legacy > 0 else float("inf"),
            "trace_cost": tps_fast / tps_traced if tps_traced > 0 else float("inf"),
            "miss_ratio": mr_fast,
            "byte_miss_ratio": bmr_fast,
        }

    headline_policy = "LRU" if "LRU" in results else next(iter(results))
    # Perf trajectory: compare this run's fast path against the previous
    # persisted document (same machine in CI and the dev loop) — the
    # disabled-instrumentation regression gate.
    fast_tps_prev = fast_change = None
    if output:
        try:
            with open(output) as f:
                prev = json.load(f)
            if (
                prev.get("workload") == workload
                and prev.get("n_requests") == len(trace)
                and headline_policy in prev.get("results", {})
            ):
                fast_tps_prev = prev["results"][headline_policy]["tps_fast"]
                fast_change = (
                    results[headline_policy]["tps_fast"] / fast_tps_prev - 1.0
                )
        except (OSError, ValueError, KeyError):
            pass
    doc = {
        "schema": BENCH_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "workload": workload,
        "n_requests": len(trace),
        "cache_fraction": fraction,
        "capacity_bytes": capacity,
        "repeats": repeats,
        "results": results,
        "headline": {
            "policy": headline_policy,
            "speedup": results[headline_policy]["speedup"],
            "tps_fast": results[headline_policy]["tps_fast"],
            "tps_legacy": results[headline_policy]["tps_legacy"],
            "trace_cost": results[headline_policy]["trace_cost"],
            "fast_tps_prev": fast_tps_prev,
            "fast_change_vs_prev": fast_change,
        },
    }
    if output:
        with open(output, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
    return doc


def format_bench(doc: dict) -> str:
    """Human-readable table of a bench document."""
    lines = [
        f"engine bench — {doc['workload']} × {doc['n_requests']:,} requests, "
        f"cache {doc['cache_fraction']:.0%} of WSS "
        f"({doc['capacity_bytes'] / 1e6:.1f} MB), best of {doc['repeats']}",
        f"{'policy':<8} {'legacy req/s':>14} {'fast req/s':>14} {'traced req/s':>14} "
        f"{'speedup':>9} {'miss_ratio':>11}",
    ]
    for name, r in doc["results"].items():
        traced = f"{r['tps_traced']:>14,.0f}" if "tps_traced" in r else f"{'-':>14}"
        lines.append(
            f"{name:<8} {r['tps_legacy']:>14,.0f} {r['tps_fast']:>14,.0f} {traced} "
            f"{r['speedup']:>8.2f}x {r['miss_ratio']:>11.4f}"
        )
    h = doc["headline"]
    lines.append(f"headline ({h['policy']}): {h['speedup']:.2f}x")
    if h.get("fast_change_vs_prev") is not None:
        lines.append(
            f"fast path vs previous run: {h['fast_change_vs_prev']:+.2%} "
            f"(prev {h['fast_tps_prev']:,.0f} req/s)"
        )
    return "\n".join(lines)
