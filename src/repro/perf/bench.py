"""Engine micro-benchmark: replay throughput with a persisted trajectory.

``repro bench`` (or :func:`run_engine_bench`) replays a fixed-seed synthetic
workload through a small policy set on **both** engine paths:

* *legacy* — the per-request rich loop (``MetricsCollector.record`` around
  every ``policy.request`` call), which is exactly the pre-optimization
  replay engine, and
* *fast* — the slim bulk-``replay`` loop the engine now uses by default.

For every policy it reports requests/second on each path, the speedup, and
asserts the two paths produced **identical** miss ratios — a hot run of the
golden-trace gate.  A third measurement replays with an observability probe
attached (``tps_traced``), so the JSON records what tracing costs — and,
by comparing ``tps_fast`` against the previous persisted document
(``headline.fast_tps_prev`` / ``headline.fast_change_vs_prev``), what the
*disabled* instrumentation costs, which must stay within noise.  Results
are written to ``BENCH_engine.json`` so future optimization PRs have a
before/after perf trajectory to extend, not just a point measurement.

Schema 2 adds two array-engine measurements.  Batch-capable policies
(:data:`repro.sim.batch.BATCH_POLICIES`) get a ``tps_batch`` column — the
structure-of-arrays core replaying the same in-memory trace, asserted
bit-identical on miss ratios against the rich engine.  The ``streaming``
section is the paper-scale shape in miniature: a constant-memory
generator writes a binary trace file, and the batch LRU core replays it
from disk (mmap, chunked) at a no-eviction capacity — the configuration
whose 100 M-request headline lives in ``docs/trace_format.md``.

The headline number is the LRU speedup: LRU is the pure engine hot path
(dict probe + pointer splice, no policy-specific work), so it isolates what
the replay machinery itself costs.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, Iterable, Mapping, Optional

from repro.sim.engine import simulate
from repro.sim.request import Trace

__all__ = [
    "DEFAULT_BENCH_POLICIES",
    "bench_registry",
    "run_engine_bench",
    "format_bench",
]

#: Policy set replayed by default: the engine baseline, a multi-chain
#: heuristic, and the paper's learned policy.
DEFAULT_BENCH_POLICIES = ("LRU", "ARC", "SCIP")

#: Schema version of ``BENCH_engine.json``; bump on layout changes.
#: 2: added per-policy ``tps_batch`` (array-engine replay, batch-capable
#: policies only) and the ``streaming`` section (binary-trace file replay).
BENCH_SCHEMA = 2


def bench_registry() -> Dict[str, Callable[[int], object]]:
    """Deprecated: use :mod:`repro.cache.registry` instead.

    Returns the unified name → factory map (heuristics plus the paper's
    SCIP/SCI).  Kept as a thin shim so pre-registry callers keep working.
    """
    import warnings

    warnings.warn(
        "repro.perf.bench.bench_registry is deprecated; use "
        "repro.cache.registry.make_policy / available_policies",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.cache.registry import policy_registry

    return policy_registry()


def _best_tps(
    factory: Callable[[int], object],
    trace: Trace,
    capacity: int,
    repeats: int,
    fast: Optional[bool],
    traced: bool = False,
) -> tuple:
    """Best-of-``repeats`` throughput; returns (tps, miss_ratio, byte_mr).

    With ``traced=True`` an observability session (registry recorder, no
    file sink) rides along, which routes the replay through the
    instrumented per-request path — the tracing-cost measurement.
    """
    from repro.obs import ObsConfig

    best = 0.0
    miss_ratio = byte_mr = None
    for _ in range(max(repeats, 1)):
        obs = ObsConfig() if traced else None
        res = simulate(factory(capacity), trace, fast=fast, obs=obs)
        best = max(best, res.tps)
        if miss_ratio is None:
            miss_ratio = res.miss_ratio
            byte_mr = res.byte_miss_ratio
        elif res.miss_ratio != miss_ratio:  # pragma: no cover - determinism gate
            raise AssertionError(
                f"non-deterministic replay: miss_ratio {res.miss_ratio!r} != {miss_ratio!r}"
            )
    return best, miss_ratio, byte_mr


def _best_tps_batch(name: str, trace: Trace, capacity: int, repeats: int) -> tuple:
    """Best-of-``repeats`` batch-core throughput on an in-memory trace."""
    from repro.sim.batch import simulate_batch

    best = 0.0
    miss_ratio = byte_mr = None
    for _ in range(max(repeats, 1)):
        res = simulate_batch(name, trace, capacity)
        best = max(best, res.tps)
        if miss_ratio is None:
            miss_ratio, byte_mr = res.miss_ratio, res.byte_miss_ratio
    return best, miss_ratio, byte_mr


def _streaming_bench(n_requests: int, repeats: int) -> dict:
    """Binary-trace file replay: stream-generate, then batch-replay LRU.

    Capacity is 2x the header's working-set estimate — the no-eviction
    configuration that isolates the array engine itself (classification,
    grouping, map traffic) from the eviction scalar loop.
    """
    import os
    import tempfile

    from repro.sim.batch import batch_replay
    from repro.traces.streaming import cdn_t_stream_spec, stream_to_bin

    fd, path = tempfile.mkstemp(suffix=".bin", prefix="bench_stream_")
    os.close(fd)
    try:
        header = stream_to_bin(cdn_t_stream_spec(n_requests), path)
        cache_bytes = 2 * max(header["wss_estimate"], 1)
        best = 0.0
        stats = None
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            core = batch_replay("LRU", path, cache_bytes)
            dt = time.perf_counter() - t0
            st = core.stats
            n = st.hits + st.misses + st.bypasses
            best = max(best, n / dt if dt > 0 else float("inf"))
            if stats is None:
                classified = st.hits + st.misses
                stats = {
                    "miss_ratio": st.misses / classified if classified else 0.0,
                    "n_requests": n,
                }
        return {
            "workload": "CDN-T-stream",
            "policy": "LRU",
            "n_requests": stats["n_requests"],
            "wss_estimate": header["wss_estimate"],
            "cache_bytes": cache_bytes,
            "tps_batch": best,
            "miss_ratio": stats["miss_ratio"],
        }
    finally:
        os.unlink(path)


def run_engine_bench(
    policies: Iterable[str] = DEFAULT_BENCH_POLICIES,
    workload: str = "CDN-T",
    n_requests: int = 200_000,
    fraction: float = 0.02,
    repeats: int = 3,
    output: Optional[str] = "BENCH_engine.json",
    quick: bool = False,
    registry: Optional[Mapping[str, Callable[[int], object]]] = None,
    seed: Optional[int] = None,
) -> dict:
    """Run the engine micro-benchmark and (optionally) persist the result.

    Parameters
    ----------
    policies:
        Policy names to replay (must exist in the unified
        :mod:`repro.cache.registry`).
    workload, n_requests, fraction:
        Fixed-seed synthetic workload and cache size (fraction of its WSS).
    repeats:
        Timing repeats per (policy, path); best-of is reported.
    output:
        Path for ``BENCH_engine.json``; ``None`` skips writing.
    quick:
        Smoke mode for CI: 30 k requests, one repeat (~seconds).
    seed:
        Workload seed override; ``None`` keeps each workload's fixed
        default (the historical baseline-comparable stream).
    """
    from repro.traces.cdn import make_workload

    if quick:
        n_requests = min(n_requests, 30_000)
        repeats = 1
    if registry is not None:
        reg = dict(registry)
    else:
        from repro.cache.registry import policy_registry

        reg = policy_registry()
    unknown = [p for p in policies if p not in reg]
    if unknown:
        raise KeyError(f"unknown bench policies {unknown}; available: {sorted(reg)}")

    trace = make_workload(workload, n_requests=n_requests, seed=seed)
    capacity = max(int(trace.working_set_size * fraction), 1)

    from repro.sim.batch import batch_supported

    results: Dict[str, dict] = {}
    for name in policies:
        factory = reg[name]
        tps_legacy, mr_legacy, bmr_legacy = _best_tps(
            factory, trace, capacity, repeats, fast=False
        )
        tps_fast, mr_fast, bmr_fast = _best_tps(
            factory, trace, capacity, repeats, fast=True
        )
        tps_traced, mr_traced, bmr_traced = _best_tps(
            factory, trace, capacity, repeats, fast=None, traced=True
        )
        if mr_fast != mr_legacy or bmr_fast != bmr_legacy:
            raise AssertionError(
                f"{name}: fast path drifted from legacy path "
                f"(miss_ratio {mr_fast!r} vs {mr_legacy!r}, "
                f"byte_miss_ratio {bmr_fast!r} vs {bmr_legacy!r})"
            )
        if mr_traced != mr_legacy or bmr_traced != bmr_legacy:
            raise AssertionError(
                f"{name}: traced path drifted from legacy path "
                f"(miss_ratio {mr_traced!r} vs {mr_legacy!r})"
            )
        tps_batch = None
        if batch_supported(name):
            tps_batch, mr_batch, bmr_batch = _best_tps_batch(
                name, trace, capacity, repeats
            )
            if mr_batch != mr_legacy or bmr_batch != bmr_legacy:
                raise AssertionError(
                    f"{name}: batch core drifted from rich engine "
                    f"(miss_ratio {mr_batch!r} vs {mr_legacy!r}, "
                    f"byte_miss_ratio {bmr_batch!r} vs {bmr_legacy!r})"
                )
        results[name] = {
            "tps_legacy": tps_legacy,
            "tps_fast": tps_fast,
            "tps_traced": tps_traced,
            "tps_batch": tps_batch,
            "speedup": tps_fast / tps_legacy if tps_legacy > 0 else float("inf"),
            "trace_cost": tps_fast / tps_traced if tps_traced > 0 else float("inf"),
            "miss_ratio": mr_fast,
            "byte_miss_ratio": bmr_fast,
        }

    # Paper-scale shape needs enough requests to amortise per-chunk costs;
    # quick mode keeps the CI smoke run at seconds.
    streaming = _streaming_bench(
        n_requests if quick else max(n_requests, 1_000_000), repeats
    )

    headline_policy = "LRU" if "LRU" in results else next(iter(results))
    # Perf trajectory: compare this run's fast path against the previous
    # persisted document (same machine in CI and the dev loop) — the
    # disabled-instrumentation regression gate.
    fast_tps_prev = fast_change = None
    if output:
        try:
            with open(output) as f:
                prev = json.load(f)
            if (
                prev.get("workload") == workload
                and prev.get("n_requests") == len(trace)
                and headline_policy in prev.get("results", {})
            ):
                fast_tps_prev = prev["results"][headline_policy]["tps_fast"]
                fast_change = (
                    results[headline_policy]["tps_fast"] / fast_tps_prev - 1.0
                )
        except (OSError, ValueError, KeyError):
            pass
    doc = {
        "schema": BENCH_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "workload": workload,
        "n_requests": len(trace),
        "cache_fraction": fraction,
        "capacity_bytes": capacity,
        "repeats": repeats,
        "results": results,
        "streaming": streaming,
        "headline": {
            "policy": headline_policy,
            "speedup": results[headline_policy]["speedup"],
            "tps_fast": results[headline_policy]["tps_fast"],
            "tps_legacy": results[headline_policy]["tps_legacy"],
            "trace_cost": results[headline_policy]["trace_cost"],
            "tps_batch": results[headline_policy]["tps_batch"],
            "streaming_tps": streaming["tps_batch"],
            "fast_tps_prev": fast_tps_prev,
            "fast_change_vs_prev": fast_change,
        },
    }
    if output:
        with open(output, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
    return doc


def format_bench(doc: dict) -> str:
    """Human-readable table of a bench document."""
    lines = [
        f"engine bench — {doc['workload']} × {doc['n_requests']:,} requests, "
        f"cache {doc['cache_fraction']:.0%} of WSS "
        f"({doc['capacity_bytes'] / 1e6:.1f} MB), best of {doc['repeats']}",
        f"{'policy':<8} {'legacy req/s':>14} {'fast req/s':>14} {'traced req/s':>14} "
        f"{'batch req/s':>14} {'speedup':>9} {'miss_ratio':>11}",
    ]
    for name, r in doc["results"].items():
        traced = f"{r['tps_traced']:>14,.0f}" if "tps_traced" in r else f"{'-':>14}"
        batch = (
            f"{r['tps_batch']:>14,.0f}" if r.get("tps_batch") is not None else f"{'-':>14}"
        )
        lines.append(
            f"{name:<8} {r['tps_legacy']:>14,.0f} {r['tps_fast']:>14,.0f} {traced} "
            f"{batch} {r['speedup']:>8.2f}x {r['miss_ratio']:>11.4f}"
        )
    h = doc["headline"]
    lines.append(f"headline ({h['policy']}): {h['speedup']:.2f}x")
    s = doc.get("streaming")
    if s:
        lines.append(
            f"streaming ({s['workload']} .bin, {s['n_requests']:,} requests, "
            f"no-evict): {s['tps_batch']:,.0f} req/s batch {s['policy']}, "
            f"miss_ratio {s['miss_ratio']:.4f}"
        )
    if h.get("fast_change_vs_prev") is not None:
        lines.append(
            f"fast path vs previous run: {h['fast_change_vs_prev']:+.2%} "
            f"(prev {h['fast_tps_prev']:,.0f} req/s)"
        )
    return "\n".join(lines)
