"""Resource measurement for the Figure 9 / Figure 11 comparisons.

The paper reports three axes per policy: peak CPU utilisation, peak memory,
and transactions per second (TPS).  On their 56-core testbed these are OS
measurements; in-process we measure the faithful analogues:

* **TPS** — wall-clock requests/second of the replay loop (same meaning);
* **CPU** — process CPU time per request, reported as the utilisation of
  one core at the measured TPS (compute-heavier policies score higher,
  matching the paper's ordering of heuristic < SCIP < learned);
* **memory** — the policy's simulated metadata footprint (inodes, ghost
  lists, model state — what §5.1 budgets) plus, optionally, the measured
  peak Python allocation.

Use :func:`profile_policy` for one measurement or :func:`profile_many` for
a whole figure's policy set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from repro.sim.engine import simulate
from repro.sim.request import Trace

__all__ = ["ResourceProfile", "profile_policy", "profile_many"]


@dataclass
class ResourceProfile:
    """One policy's resource measurements on one trace."""

    policy: str
    tps: float
    cpu_us_per_request: float
    #: single-core utilisation at the measured TPS, in percent.
    cpu_percent: float
    metadata_bytes: int
    peak_alloc_bytes: int
    miss_ratio: float

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "tps": self.tps,
            "cpu_us_per_request": self.cpu_us_per_request,
            "cpu_percent": self.cpu_percent,
            "metadata_bytes": self.metadata_bytes,
            "peak_alloc_bytes": self.peak_alloc_bytes,
            "miss_ratio": self.miss_ratio,
        }


def profile_policy(
    factory: Callable[[int], object],
    trace: Trace,
    cache_bytes: int,
    measure_memory: bool = True,
) -> ResourceProfile:
    """Measure one policy's TPS / CPU / memory on a trace."""
    policy = factory(cache_bytes)
    result = simulate(policy, trace, measure_memory=measure_memory)
    n = max(result.requests, 1)
    cpu_us = result.cpu_seconds * 1e6 / n
    # Utilisation of one core while sustaining the measured TPS.
    cpu_pct = min(result.cpu_seconds * result.tps / n * 100.0, 100.0)
    return ResourceProfile(
        policy=result.policy,
        tps=result.tps,
        cpu_us_per_request=cpu_us,
        cpu_percent=cpu_pct,
        metadata_bytes=result.metadata_bytes,
        peak_alloc_bytes=result.peak_alloc_bytes,
        miss_ratio=result.miss_ratio,
    )


def profile_many(
    factories: Mapping[str, Callable[[int], object]],
    trace: Trace,
    cache_bytes: int,
    measure_memory: bool = True,
) -> Dict[str, ResourceProfile]:
    """Profile a set of policies on the same trace and cache size."""
    return {
        name: profile_policy(f, trace, cache_bytes, measure_memory=measure_memory)
        for name, f in factories.items()
    }
