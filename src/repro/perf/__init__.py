"""Performance subsystem: resource meters (Figure 9 / Figure 11) and the
engine replay micro-benchmark with its persisted perf trajectory."""

from repro.perf.bench import bench_registry, format_bench, run_engine_bench
from repro.perf.meters import ResourceProfile, profile_many, profile_policy

__all__ = [
    "ResourceProfile",
    "profile_policy",
    "profile_many",
    "run_engine_bench",
    "format_bench",
    "bench_registry",
]
