"""Resource meters for the Figure 9 / Figure 11 comparisons."""

from repro.perf.meters import ResourceProfile, profile_many, profile_policy

__all__ = ["ResourceProfile", "profile_policy", "profile_many"]
