"""The one policy registry: every constructible policy, registered once.

Before this module existed the name → class map was maintained in three
places — :data:`repro.cache.POLICIES` plus ad-hoc ``registry["SCIP"] =
SCIPCache`` special-casing in the CLI, the perf bench, the orchestrator
and the parallel sweep runner — and they drifted (different error
messages, different availability of SCIP/SCI).  Everything now funnels
through here:

* :func:`available_policies` — the canonical sorted name tuple;
* :func:`resolve_policy` — name → factory (``capacity -> CachePolicy``);
* :func:`make_policy` — name + capacity (+ kwargs) → instance.

The paper's learned policies (SCIP, SCI) live in :mod:`repro.core`, which
itself imports :mod:`repro.cache` — so they are registered lazily on first
use rather than at import time, keeping the package import-cycle free.
:func:`register_policy` is the extension point for out-of-tree policies
(tests use it); registering a duplicate name is an error, not a silent
overwrite.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.cache.base import CachePolicy

__all__ = [
    "available_policies",
    "make_policy",
    "policy_registry",
    "resolve_policy",
    "register_policy",
    "unregister_policy",
]

#: name → factory; populated lazily by :func:`_registry`.
_REGISTRY: Optional[Dict[str, Callable[..., CachePolicy]]] = None


def _registry() -> Dict[str, Callable[..., CachePolicy]]:
    """Build (once) and return the full name → factory map."""
    global _REGISTRY
    if _REGISTRY is None:
        from repro.cache import POLICIES
        from repro.core.sci import SCICache
        from repro.core.scip import SCIPCache

        reg: Dict[str, Callable[..., CachePolicy]] = dict(POLICIES)
        reg["SCIP"] = SCIPCache
        reg["SCI"] = SCICache
        _REGISTRY = reg
    return _REGISTRY


def available_policies() -> Tuple[str, ...]:
    """Sorted names of every registered policy."""
    return tuple(sorted(_registry()))


def policy_registry() -> Dict[str, Callable[..., CachePolicy]]:
    """A copy of the full name → factory map (mutations don't stick —
    use :func:`register_policy` to extend the registry)."""
    return dict(_registry())


def resolve_policy(name: str) -> Callable[..., CachePolicy]:
    """Factory (``capacity, **kwargs -> CachePolicy``) for a registered name.

    Raises ``KeyError`` with the canonical "unknown policy" message — the
    CLI prints it verbatim and exits 2, so every subcommand reports the
    same way.
    """
    try:
        return _registry()[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {list(available_policies())}"
        ) from None


def make_policy(name: str, capacity: int, **kwargs) -> CachePolicy:
    """Instantiate a registered policy by display name."""
    return resolve_policy(name)(capacity, **kwargs)


def register_policy(
    name: str, factory: Callable[..., CachePolicy], replace: bool = False
) -> None:
    """Register an additional policy (plugins, tests).

    ``replace=True`` permits shadowing an existing name; without it a
    duplicate registration raises ``ValueError``.
    """
    reg = _registry()
    if not replace and name in reg:
        raise ValueError(f"policy {name!r} already registered")
    reg[name] = factory


def unregister_policy(name: str) -> None:
    """Remove a registered policy (plugin teardown; ``KeyError`` if absent)."""
    reg = _registry()
    if name not in reg:
        raise KeyError(f"unknown policy {name!r}")
    del reg[name]
