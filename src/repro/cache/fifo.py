"""First-In First-Out cache.

Insertion at MRU, but hits do **not** promote — the queue preserves arrival
order, so the victim is always the oldest resident object.  FIFO is the
eviction rule used inside SCIP's history lists (§3.2) and a useful sanity
baseline (it is immune to promotion effects by construction).
"""

from __future__ import annotations

from repro.cache.base import QueueCache
from repro.cache.queue import Node
from repro.sim.request import Request

__all__ = ["FIFOCache"]


class FIFOCache(QueueCache):
    """Size-aware FIFO."""

    name = "FIFO"

    def _on_hit(self, node: Node, req: Request) -> None:
        # No promotion: arrival order is eviction order.
        return
