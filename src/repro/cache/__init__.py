"""Cache policy zoo: baselines, the paper's eight insertion/promotion
comparators, the nine replacement comparators, and the Belady oracle.

:data:`POLICIES` maps display names (as used in the paper's figures) to
policy classes; :func:`make_policy` builds one by name.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.cache.admission import AdaptSizeCache, TinyLFUCache, TwoQCache
from repro.cache.arc import ARCCache
from repro.cache.ascip import ASCIPCache
from repro.cache.base import CachePolicy, CacheStats, QueueCache
from repro.cache.belady import BeladyCache
from repro.cache.beladysize import BeladySizeCache
from repro.cache.cacheus import CacheusCache
from repro.cache.clock import ClockCache
from repro.cache.daaip import DAAIPCache
from repro.cache.dgippr import DGIPPRCache
from repro.cache.dta import DTACache
from repro.cache.fifo import FIFOCache
from repro.cache.gdsf import GDSFCache
from repro.cache.glcache import GLCache
from repro.cache.lecar import LeCaRCache
from repro.cache.lfu import LFUCache
from repro.cache.lhd import LHDCache
from repro.cache.lip import BIPCache, DIPCache, LIPCache
from repro.cache.lirs import LIRSCache
from repro.cache.lrb import LRBCache
from repro.cache.lru import LRUCache
from repro.cache.lruk import LRUKCache
from repro.cache.pipp import PIPPCache
from repro.cache.queue import LinkedQueue, Node
from repro.cache.s4lru import S4LRUCache, SegmentedLRUCache
from repro.cache.ship import SHiPCache
from repro.cache.sieve import S3FIFOCache, SieveCache
from repro.cache.sslru import SSLRUCache

__all__ = [
    "CachePolicy",
    "CacheStats",
    "QueueCache",
    "LinkedQueue",
    "Node",
    "POLICIES",
    "INSERTION_POLICIES",
    "REPLACEMENT_POLICIES",
    "make_policy",
    "available_policies",
    "LRUCache",
    "FIFOCache",
    "LFUCache",
    "ARCCache",
    "LIPCache",
    "BIPCache",
    "DIPCache",
    "PIPPCache",
    "SHiPCache",
    "DTACache",
    "DAAIPCache",
    "DGIPPRCache",
    "ASCIPCache",
    "LRUKCache",
    "S4LRUCache",
    "SegmentedLRUCache",
    "SSLRUCache",
    "GDSFCache",
    "LHDCache",
    "LeCaRCache",
    "CacheusCache",
    "LRBCache",
    "GLCache",
    "BeladyCache",
    "BeladySizeCache",
    "LIRSCache",
    "ClockCache",
    "SieveCache",
    "S3FIFOCache",
    "TwoQCache",
    "TinyLFUCache",
    "AdaptSizeCache",
]

#: All registered policies by display name.
POLICIES: Dict[str, Type[CachePolicy]] = {
    "LRU": LRUCache,
    "FIFO": FIFOCache,
    "LFU": LFUCache,
    "ARC": ARCCache,
    "LIP": LIPCache,
    "BIP": BIPCache,
    "DIP": DIPCache,
    "PIPP": PIPPCache,
    "SHiP": SHiPCache,
    "DTA": DTACache,
    "DAAIP": DAAIPCache,
    "DGIPPR": DGIPPRCache,
    "ASC-IP": ASCIPCache,
    "LRU-K": LRUKCache,
    "S4LRU": S4LRUCache,
    "SS-LRU": SSLRUCache,
    "GDSF": GDSFCache,
    "LHD": LHDCache,
    "LeCaR": LeCaRCache,
    "CACHEUS": CacheusCache,
    "LRB": LRBCache,
    "GL-Cache": GLCache,
    "Belady": BeladyCache,
    "Belady-Size": BeladySizeCache,
    "LIRS": LIRSCache,
    "CLOCK": ClockCache,
    "SIEVE": SieveCache,
    "S3-FIFO": S3FIFOCache,
    "2Q": TwoQCache,
    "TinyLFU": TinyLFUCache,
    "AdaptSize": AdaptSizeCache,
}

#: The paper's eight insertion/promotion comparators (Figures 8 & 9).
INSERTION_POLICIES = ("LIP", "DIP", "PIPP", "DTA", "SHiP", "DGIPPR", "DAAIP", "ASC-IP")

#: The paper's nine replacement comparators (Figures 10 & 11).
REPLACEMENT_POLICIES = (
    "LRU",
    "LRU-K",
    "S4LRU",
    "SS-LRU",
    "GDSF",
    "LHD",
    "CACHEUS",
    "LRB",
    "GL-Cache",
)


def make_policy(name: str, capacity: int, **kwargs) -> CachePolicy:
    """Instantiate a registered policy by display name.

    Delegates to :mod:`repro.cache.registry` — the unified registry, which
    also covers the paper's learned policies (SCIP, SCI).
    """
    from repro.cache.registry import make_policy as _make

    return _make(name, capacity, **kwargs)


def available_policies():
    """Sorted names of every registered policy (see :mod:`repro.cache.registry`)."""
    from repro.cache.registry import available_policies as _avail

    return _avail()
