"""S4LRU — four-segment segmented LRU (Huang et al.; used as the strong
heuristic baseline in the Tencent photo-cache study [31] the CDN-A trace
comes from).

The cache is split into 4 equal-byte segments L0 … L3 (L3 most protected).
Misses insert at the head of L0; a hit in Li promotes the object to the head
of L(i+1) (capped at L3).  When a segment overflows, its tail spills to the
head of the segment below; L0's tail is evicted.  Objects must prove reuse
repeatedly to reach protection, which gives natural scan resistance.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cache.base import CachePolicy
from repro.cache.queue import LinkedQueue, Node
from repro.sim.request import Request

__all__ = ["S4LRUCache", "SegmentedLRUCache"]


class SegmentedLRUCache(CachePolicy):
    """Generalised segmented LRU with ``levels`` equal-byte segments.

    The segment index rides in the intrusive node's ``stamp`` slot, so the
    lookup map is a plain ``key -> node`` dict — promotions and spills are
    an int store instead of a fresh ``(node, level)`` tuple per transition.
    """

    name = "SLRU"

    def __init__(self, capacity: int, levels: int = 4):
        super().__init__(capacity)
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.levels = levels
        self.seg_capacity = capacity // levels
        self.segments: List[LinkedQueue] = [LinkedQueue() for _ in range(levels)]
        self._where: Dict[int, Node] = {}

    def _lookup(self, key: int) -> bool:
        return key in self._where

    def _spill(self, level: int) -> None:
        """Cascade overflow from ``level`` down to eviction at L0."""
        for lv in range(level, 0, -1):
            seg = self.segments[lv]
            below = self.segments[lv - 1]
            while seg.bytes > self.seg_capacity and len(seg):
                node = seg.pop_lru()
                node.stamp = lv - 1
                below.push_mru(node)
        seg0 = self.segments[0]
        # L0 absorbs all spill; evict its tail until the *total* fits.
        while self.used > self.capacity and len(seg0):
            victim = seg0.pop_lru()
            del self._where[victim.key]
            self.used -= victim.size
            self.stats.evictions += 1

    def _hit(self, req: Request) -> None:
        node = self._where[req.key]
        self.segments[node.stamp].unlink(node)
        if node.size != req.size:
            self.used += req.size - node.size
            node.size = req.size
        up = min(node.stamp + 1, self.levels - 1)
        node.stamp = up
        self.segments[up].push_mru(node)
        self._spill(up)
        # A size increase may have pushed total over capacity with empty L0.
        self._enforce_total()

    def _miss(self, req: Request) -> None:
        node = Node(req.key, req.size)
        node.stamp = 0
        self.segments[0].push_mru(node)
        self._where[req.key] = node
        self.used += req.size
        self._spill(0)
        self._enforce_total()

    def _enforce_total(self) -> None:
        """Evict bottom-up until within capacity (handles giant objects that
        exceed a single segment's share)."""
        lv = 0
        while self.used > self.capacity:
            while lv < self.levels and not len(self.segments[lv]):
                lv += 1
            if lv >= self.levels:  # pragma: no cover - cannot happen if used > 0
                break
            victim = self.segments[lv].pop_lru()
            del self._where[victim.key]
            self.used -= victim.size
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._where)


class S4LRUCache(SegmentedLRUCache):
    """The 4-segment instantiation used by the paper's comparison."""

    name = "S4LRU"

    def __init__(self, capacity: int):
        super().__init__(capacity, levels=4)
