"""ASC-IP — Adaptive Size-aware Cache Insertion Policy (Wang et al.,
ICCD'22), the paper's direct predecessor and strongest insertion comparator.

ASC-IP observes that, in CDN workloads, zero-reuse objects (ZROs) skew
large.  It maintains a *size threshold* ``T``: missing objects with
``size >= T`` are suspected ZROs and inserted at the LRU position (via a
bimodal gate that still gives suspects an occasional MRU chance, reconciling
misjudgments); smaller objects go to MRU.  Hits always promote to the MRU
position — ASC-IP has **no** promotion policy, which is exactly the P-ZRO
blind spot SCIP fixes (§1, §2.3).

``T`` adapts from the two size populations the eviction stream reveals —
the sizes of victims that died without a hit (suspected ZROs) and the sizes
of victims that were reused — tracked as exponential moving averages; ``T``
sits at their geometric midpoint.  This is the strongest form the original's
size heuristic can take: its accuracy is bounded by how separable the two
size distributions actually are, which is precisely the limitation the SCIP
paper holds against it (§2.3 — size favours the side with more judgments,
and normal-sized recurring ZROs are invisible to any size threshold).
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.cache.base import LRU_POS, MRU_POS, QueueCache
from repro.cache.queue import Node
from repro.sim.request import Request

__all__ = ["ASCIPCache"]


class ASCIPCache(QueueCache):
    """Adaptive size-aware insertion over an LRU queue.

    Parameters
    ----------
    init_threshold:
        Starting size threshold in bytes (default 64 KiB — near the CDN
        mean object size, as in the original).
    smoothing:
        EWMA factor for the dead/reused size-population means.
    mru_chance:
        Bimodal escape probability: a suspected ZRO still gets an MRU
        insertion with this probability.
    """

    name = "ASC-IP"

    _T_MIN = 256          # 256 B floor
    _T_MAX = 1 << 33      # 8 GiB ceiling

    def __init__(
        self,
        capacity: int,
        init_threshold: int = 64 * 1024,
        smoothing: float = 0.02,
        mru_chance: float = 1 / 32,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(capacity)
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.threshold = float(init_threshold)
        self.smoothing = smoothing
        self.mru_chance = mru_chance
        self.rng = rng or random.Random(0)
        # Log-size EWMAs of the two victim populations (geometric means).
        self._log_dead = math.log(init_threshold * 2.0)
        self._log_live = math.log(init_threshold / 2.0)

    def _insert_position(self, req: Request) -> int:
        if req.size >= self.threshold:
            # Suspected ZRO; bimodal gate reconciles misjudgment.
            return MRU_POS if self.rng.random() < self.mru_chance else LRU_POS
        return MRU_POS

    def _on_evict(self, node: Node) -> None:
        r = self.smoothing
        logsz = math.log(max(node.size, 1))
        if not node.hit_token:
            self._log_dead += r * (logsz - self._log_dead)
        else:
            self._log_live += r * (logsz - self._log_live)
        # Threshold at the geometric midpoint of the two populations; if
        # they invert (reused objects are the larger ones), denial is
        # pointless and the threshold saturates high.
        if self._log_dead > self._log_live:
            mid = (self._log_dead + self._log_live) / 2.0
            self.threshold = min(max(math.exp(mid), self._T_MIN), self._T_MAX)
        else:
            self.threshold = self._T_MAX

    def metadata_bytes(self) -> int:
        return 110 * len(self) + 32  # threshold + two EWMAs
