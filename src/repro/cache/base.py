"""Cache policy base classes.

Two layers:

* :class:`CachePolicy` — the abstract contract every algorithm implements:
  ``request(req) -> bool`` (hit or miss), byte-accurate capacity accounting,
  and built-in hit/miss counters so a policy can be used standalone.  The
  simulation engine keeps its own counters as well, so policies cannot
  misreport results.

* :class:`QueueCache` — shared machinery for the (large) family of policies
  whose resident set lives in a single recency queue and whose behaviour is
  defined by three hooks: where to insert a missing object
  (:meth:`_insert_position`), what to do on a hit (:meth:`_on_hit`), and which
  node to evict (:meth:`_choose_victim`, default: the LRU end).  LIP, DIP,
  BIP, PIPP, SHiP, DTA, DAAIP, DGIPPR, ASC-IP, SCI and SCIP are all
  expressible in this frame, which is exactly the point the paper makes:
  an insertion/promotion policy is orthogonal to victim selection.

Objects larger than the cache capacity are **bypassed** (never admitted),
matching CDN simulator convention — counting them as unavoidable misses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional

from repro.cache.queue import LinkedQueue, Node
from repro.sim.request import Request

__all__ = ["CacheStats", "CachePolicy", "QueueCache", "MRU_POS", "LRU_POS"]

#: Insertion-position constants used by bimodal policies.
MRU_POS = 1
LRU_POS = 0


class CacheStats:
    """Hit/miss counters in both object and byte units."""

    __slots__ = ("hits", "misses", "bytes_hit", "bytes_missed", "evictions", "bypasses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.bytes_hit = 0
        self.bytes_missed = 0
        self.evictions = 0
        self.bypasses = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Object miss ratio; 0.0 on an empty history."""
        n = self.requests
        return self.misses / n if n else 0.0

    @property
    def hit_ratio(self) -> float:
        n = self.requests
        return self.hits / n if n else 0.0

    @property
    def byte_miss_ratio(self) -> float:
        total = self.bytes_hit + self.bytes_missed
        return self.bytes_missed / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.bytes_hit = 0
        self.bytes_missed = 0
        self.evictions = 0
        self.bypasses = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "miss_ratio": self.miss_ratio,
            "byte_miss_ratio": self.byte_miss_ratio,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
        }


class CachePolicy(ABC):
    """Abstract cache replacement algorithm.

    Parameters
    ----------
    capacity:
        Cache capacity in bytes.  Must be positive.
    """

    #: Human-readable policy name used in experiment tables; subclasses set it.
    name: str = "abstract"

    #: Observability probe (:class:`repro.obs.probe.Probe`).  Class-level
    #: ``None`` is the module-level no-op: hook points cost exactly one
    #: ``if self._probe is not None`` branch until :meth:`attach_probe`
    #: shadows this with an instance attribute.
    _probe = None

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.used = 0
        self.stats = CacheStats()
        self.clock = 0  # logical time: number of requests processed

    # -- required interface --------------------------------------------------
    @abstractmethod
    def _lookup(self, key: int) -> bool:
        """Whether the key is resident (no side effects)."""

    @abstractmethod
    def _hit(self, req: Request) -> None:
        """Handle a resident request (promotion, bookkeeping)."""

    @abstractmethod
    def _miss(self, req: Request) -> None:
        """Handle a missing request (admit/insert/evict as needed)."""

    # -- template -------------------------------------------------------------
    def request(self, req: Request) -> bool:
        """Process one request; return ``True`` on a cache hit."""
        self.clock += 1
        if self._lookup(req.key):
            self.stats.hits += 1
            self.stats.bytes_hit += req.size
            self._hit(req)
            return True
        self.stats.misses += 1
        self.stats.bytes_missed += req.size
        if req.size > self.capacity:
            self.stats.bypasses += 1
        else:
            self._miss(req)
        return False

    def contains(self, key: int) -> bool:
        """Public residency probe (no state change)."""
        return self._lookup(key)

    # -- observability -----------------------------------------------------------
    def attach_probe(self, probe) -> None:
        """Attach an observability probe (:class:`repro.obs.probe.Probe`).

        Hook points (``admit``, ``evict``, policy-specific learner events)
        start emitting; bulk-replay fast loops that bypass the hooks drop
        back to the instrumented per-request path until :meth:`detach_probe`.
        The decision sequence is unchanged either way — the golden-trace
        suite pins replay-with-probe against the recorded traces.
        """
        self._probe = probe
        if probe.now is None:
            probe.now = lambda: self.clock

    def detach_probe(self) -> None:
        """Remove the probe; hook points return to the single-branch no-op."""
        self._probe = None

    def replay(self, requests, out: Optional[list] = None) -> None:
        """Process a whole request sequence (the engine's bulk hot path).

        Equivalent to calling :meth:`request` once per element, but with the
        per-request dispatch hoisted out of the loop.  When ``out`` is given,
        the per-request hit/miss booleans are appended to it (the golden-trace
        tests use this to pin the exact decision sequence).  Aggregate
        outcomes are read from :attr:`stats` deltas.

        Subclasses may override with a faster loop **only if** it stays
        bit-identical to the per-request path — the equivalence suite in
        ``tests/sim/test_golden_traces.py`` enforces this.
        """
        request = self.request
        if out is None:
            for req in requests:
                request(req)
        else:
            append = out.append
            for req in requests:
                append(request(req))

    # -- resident-set portability -------------------------------------------
    def export_residents(self):
        """Yield ``(key, size)`` for every resident object, coldest first.

        The duck-typed warm-handoff/migration protocol: live policy swaps
        (:meth:`repro.serve.shard.CacheShard._swap`) and cluster warm
        handoffs replay the exported pairs into the successor via
        :meth:`import_resident`, so composite policies (per-tenant
        partitions) migrate state without the caller knowing their
        internals.  The base class has no resident structure to walk and
        exports nothing — migration degrades to a cold start, which is the
        pre-protocol behaviour for non-queue policies.
        """
        return iter(())

    def import_resident(self, key: int, size: int) -> bool:
        """Admit one exported object without recording a hit or miss.

        Migration is opt-in: the base class refuses, so swapping onto a
        policy with no migration story (priority structures whose state a
        bare ``(key, size)`` pair cannot reconstruct) stays a cold
        restart — the pre-protocol behaviour.  Queue policies and
        composite partitions override.
        """
        return False

    # -- introspection ----------------------------------------------------------
    def __len__(self) -> int:
        """Number of resident objects (subclasses with queues override)."""
        raise NotImplementedError

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used

    def metadata_bytes(self) -> int:
        """Estimated metadata footprint in bytes, for the Fig 9/11 memory
        comparison.  Subclasses refine; the default charges the paper's
        110-byte inode per resident object."""
        return 110 * len(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(capacity={self.capacity}, used={self.used})"


class QueueCache(CachePolicy):
    """Base for single-recency-queue policies with pluggable insertion,
    promotion and victim-selection hooks.

    Subclasses typically override only:

    * :meth:`_insert_position` → ``MRU_POS`` or ``LRU_POS`` for a missing
      object (called once per admitted miss);
    * :meth:`_on_hit` → promotion behaviour (default: classic move-to-MRU);
    * :meth:`_on_evict` → observe the victim node (adaptive policies learn
      from eviction outcomes here);
    * :meth:`_choose_victim` → non-LRU victim selection (LRU-K, LRB, …).
    """

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self.queue = LinkedQueue()
        self.index: dict = {}

    # -- hooks ------------------------------------------------------------------
    def _insert_position(self, req: Request) -> int:
        """Insertion position for a missing object; default MRU (LRU policy)."""
        return MRU_POS

    def _on_hit(self, node: Node, req: Request) -> None:
        """Hit handling; default classic LRU promotion."""
        self.queue.move_to_mru(node)

    def _on_evict(self, node: Node) -> None:
        """Observe an evicted node (ghost lists, threshold adaptation, …)."""

    def _on_insert(self, node: Node, req: Request) -> None:
        """Observe a newly inserted node (predictors initialise state here)."""

    def _choose_victim(self) -> Node:
        """Pick the eviction victim; default the LRU-end node."""
        tail = self.queue.tail
        assert tail is not None
        return tail

    # -- CachePolicy implementation ----------------------------------------------
    def _lookup(self, key: int) -> bool:
        return key in self.index

    def _hit(self, req: Request) -> None:
        node = self.index[req.key]
        node.hit_token = (node.hit_token or 0) + 1  # per-residency hit count
        if node.size != req.size:
            # Object was updated at the origin; account the size change.
            self.used += req.size - node.size
            self.queue.bytes += req.size - node.size
            node.size = req.size
        self._on_hit(node, req)
        # A grown object may have pushed the cache over capacity.
        if self.used > self.capacity:
            self._make_room(0)

    def _miss(self, req: Request) -> None:
        self._make_room(req.size)
        node = Node(req.key, req.size)
        pos = self._insert_position(req)
        node.inserted_mru = pos == MRU_POS
        if node.inserted_mru:
            self.queue.push_mru(node)
        else:
            self.queue.push_lru(node)
        self.index[req.key] = node
        self.used += req.size
        self._on_insert(node, req)
        if self._probe is not None:
            self._probe.emit(
                "admit", key=req.key, size=req.size, mru=node.inserted_mru
            )

    def _make_room(self, need: int) -> None:
        while self.used + need > self.capacity and self.index:
            victim = self._choose_victim()
            self.evict_node(victim)

    def evict_node(self, node: Node) -> None:
        """Evict a specific resident node, firing the observation hook."""
        self.queue.unlink(node)
        del self.index[node.key]
        self.used -= node.size
        self.stats.evictions += 1
        self._on_evict(node)
        if self._probe is not None:
            self._probe.emit(
                "evict",
                key=node.key,
                size=node.size,
                hits=node.hit_token or 0,
                mru=node.inserted_mru,
            )

    def remove(self, key: int) -> Optional[Node]:
        """Silently remove a resident object (paper's ``C.REMOVE``): the node
        leaves the cache *without* being recorded as an eviction — promotion
        in Algorithm 1 is remove-then-insert and must not pollute the
        history lists."""
        node = self.index.pop(key, None)
        if node is None:
            return None
        self.queue.unlink(node)
        self.used -= node.size
        return node

    def __len__(self) -> int:
        return len(self.index)

    # -- bulk replay fast path -------------------------------------------------
    def _fast_replay_eligible(self) -> bool:
        """Whether this instance runs the stock template end to end.

        The inlined loop in :meth:`replay` reproduces the *default*
        ``request``/``_hit``/``_miss``/eviction plumbing with all state held
        in locals; any override could observe stale instance state mid-loop,
        so the fast loop only engages when every overridable piece is the
        base-class original (pure LRU).  Everything else falls back to the
        generic bound-method loop.

        An attached probe also disqualifies the instance: the inlined loop
        bypasses the ``admit``/``evict`` hook points, so tracing selects the
        instrumented per-request path instead (decision-identical; the
        bare loop itself stays branch-free).
        """
        if self._probe is not None:
            return False
        cls = type(self)
        return (
            cls.request is CachePolicy.request
            and cls._lookup is QueueCache._lookup
            and cls._hit is QueueCache._hit
            and cls._miss is QueueCache._miss
            and cls._make_room is QueueCache._make_room
            and cls.evict_node is QueueCache.evict_node
            and cls._insert_position is QueueCache._insert_position
            and cls._on_hit is QueueCache._on_hit
            and cls._on_evict is QueueCache._on_evict
            and cls._on_insert is QueueCache._on_insert
            and cls._choose_victim is QueueCache._choose_victim
        )

    def replay(self, requests, out: Optional[list] = None) -> None:
        """Bulk replay; bit-identical to per-request :meth:`request` calls.

        For the default-template case (classic LRU) the whole
        lookup→promote / make-room→insert cycle is inlined into one loop:
        no method dispatch, queue pointers spliced directly, counters
        accumulated in locals and folded back into ``stats``/``queue`` state
        once at the end.  This is the ~3× engine speedup the benchmark
        subsystem tracks; the golden-trace suite pins its equivalence.
        """
        if not self._fast_replay_eligible():
            return CachePolicy.replay(self, requests, out)
        index = self.index
        index_get = index.get
        queue = self.queue
        sentinel = queue._sentinel
        capacity = self.capacity
        node_cls = Node
        append = out.append if out is not None else None
        # Loop-local mirrors of instance state, folded back after the loop.
        used = self.used
        qbytes = queue.bytes
        count = queue._count
        hits = misses = bytes_hit = bytes_missed = evictions = bypasses = 0
        # Evicted nodes are recycled for subsequent inserts: a steady-state
        # replay then allocates ~zero objects per request.  Pooled nodes are
        # unreachable (removed from the index) so reuse is unobservable.
        pool: list = []
        pool_pop = pool.pop
        pool_append = pool.append
        for req in requests:
            key = req.key
            size = req.size
            node = index_get(key)
            if node is not None:
                # Hit: account, bump the residency token, splice to MRU.
                hits += 1
                bytes_hit += size
                node.hit_token += 1
                if node.size != size:
                    d = size - node.size
                    used += d
                    qbytes += d
                    node.size = size
                prev = node.prev
                nxt = node.next
                prev.next = nxt
                nxt.prev = prev
                head = sentinel.next
                node.prev = sentinel
                node.next = head
                head.prev = node
                sentinel.next = node
                # A grown object may have pushed the cache over capacity.
                while used > capacity and index:
                    victim = sentinel.prev
                    p = victim.prev
                    p.next = sentinel
                    sentinel.prev = p
                    count -= 1
                    qbytes -= victim.size
                    del index[victim.key]
                    used -= victim.size
                    evictions += 1
                    pool_append(victim)
                if append is not None:
                    append(True)
            else:
                misses += 1
                bytes_missed += size
                if size > capacity:
                    bypasses += 1
                else:
                    while used + size > capacity and index:
                        victim = sentinel.prev
                        p = victim.prev
                        p.next = sentinel
                        sentinel.prev = p
                        count -= 1
                        qbytes -= victim.size
                        del index[victim.key]
                        used -= victim.size
                        evictions += 1
                        pool_append(victim)
                    if pool:
                        node = pool_pop()
                        node.key = key
                        node.size = size
                        node.inserted_mru = True
                        node.hit_token = 0
                        node.data = None
                        node.stamp = 0
                    else:
                        node = node_cls(key, size)
                    head = sentinel.next
                    node.prev = sentinel
                    node.next = head
                    head.prev = node
                    sentinel.next = node
                    count += 1
                    qbytes += size
                    index[key] = node
                    used += size
                if append is not None:
                    append(False)
        # Cut leftover pooled nodes loose so they don't pin ring neighbours.
        for n in pool:
            n.prev = None
            n.next = None
        self.used = used
        self.clock += hits + misses
        queue.bytes = qbytes
        queue._count = count
        st = self.stats
        st.hits += hits
        st.misses += misses
        st.bytes_hit += bytes_hit
        st.bytes_missed += bytes_missed
        st.evictions += evictions
        st.bypasses += bypasses

    def resident_keys(self) -> list:
        """Keys MRU → LRU (diagnostics / tests)."""
        return self.queue.keys()

    def export_residents(self):
        """Yield ``(key, size)`` LRU → MRU: replaying the export through
        :meth:`import_resident` reconstructs recency order in the
        successor."""
        for node in self.queue.iter_lru():
            yield node.key, node.size

    def import_resident(self, key: int, size: int) -> bool:
        """Admit one exported object through the normal miss path.

        No hit/miss is recorded — a migration is not traffic.  Returns
        ``True`` if the object was admitted (``False``: already resident
        or larger than the cache).
        """
        if size > self.capacity or self._lookup(key):
            return False
        self._miss(Request(self.clock, key, size))
        return True

    def check_invariants(self) -> None:
        """Structural self-check used by property tests."""
        self.queue.check_invariants()
        assert len(self.index) == len(self.queue), "index/queue count mismatch"
        assert self.used == self.queue.bytes, "byte accounting mismatch"
        assert self.used <= self.capacity, "capacity overflow"
        for key, node in self.index.items():
            assert node.key == key, "index key mismatch"
