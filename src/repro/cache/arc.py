"""ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).

Four lists: T1 (recent, seen once), T2 (frequent, seen ≥2×), and ghost lists
B1/B2 holding metadata of objects recently evicted from T1/T2.  The target
size ``p`` for T1 adapts on ghost hits.  This is the canonical "passive
eviction policy with a multi-chain structure" the paper cites (§4) — SCIP
explicitly does *not* integrate with it, which our enhancement tests assert.

Adapted to variable object sizes: capacities and ``p`` are tracked in bytes;
the REPLACE rule compares T1's byte occupancy against ``p``.

The list an object currently occupies is stored *on its intrusive node*
(``Node.data``, one of the ``T1``/``T2``/``B1``/``B2`` constants) rather
than in a ``key -> (node, tag)`` side map — every hit, REPLACE and ghost
transition used to allocate a fresh tuple; now they are a single int store.
"""

from __future__ import annotations

from repro.cache.base import CachePolicy
from repro.cache.queue import LinkedQueue, Node
from repro.sim.request import Request

__all__ = ["ARCCache"]

#: List tags stored in ``Node.data``.  Residency is ``data < B1``.
T1, T2, B1, B2 = 0, 1, 2, 3


class ARCCache(CachePolicy):
    """Size-aware ARC."""

    name = "ARC"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self.t1 = LinkedQueue()
        self.t2 = LinkedQueue()
        self.b1 = LinkedQueue()
        self.b2 = LinkedQueue()
        # key -> node; the node's ``data`` slot carries its list tag.
        self._where: dict = {}
        self.p = 0  # adaptive target for t1, in bytes

    # -- helpers ------------------------------------------------------------
    def _ghost_trim(self) -> None:
        """Bound ghost metadata.  The page-count rule (|T1|+|B1| ≤ c) maps
        poorly to bytes — a byte-full T1 would leave zero ghost budget and
        disable adaptation — so each ghost list gets its own byte budget of
        one cache's worth, preserving the original's ≤ 2c total footprint
        of *described* data while the lists themselves remain metadata."""
        while self.b1.bytes > self.capacity and len(self.b1):
            n = self.b1.pop_lru()
            del self._where[n.key]
        while self.b2.bytes > self.capacity and len(self.b2):
            n = self.b2.pop_lru()
            del self._where[n.key]

    def _replace(self, req: Request, in_b2: bool) -> None:
        """Evict from T1 or T2 into the matching ghost list."""
        if len(self.t1) and (
            self.t1.bytes > self.p or (in_b2 and self.t1.bytes == self.p)
        ):
            victim = self.t1.pop_lru()
            victim.data = B1
            self.b1.push_mru(victim)
        elif len(self.t2):
            victim = self.t2.pop_lru()
            victim.data = B2
            self.b2.push_mru(victim)
        elif len(self.t1):
            victim = self.t1.pop_lru()
            victim.data = B1
            self.b1.push_mru(victim)
        else:  # pragma: no cover - nothing resident
            return
        self.used -= victim.size
        self.stats.evictions += 1

    def _make_room(self, req: Request, in_b2: bool) -> None:
        while self.used + req.size > self.capacity and (len(self.t1) or len(self.t2)):
            self._replace(req, in_b2)

    # -- CachePolicy ----------------------------------------------------------
    def _lookup(self, key: int) -> bool:
        node = self._where.get(key)
        return node is not None and node.data < B1

    def _hit(self, req: Request) -> None:
        node = self._where[req.key]
        q = self.t1 if node.data == T1 else self.t2
        q.unlink(node)
        if node.size != req.size:
            self.used += req.size - node.size
            node.size = req.size
        node.data = T2
        self.t2.push_mru(node)
        while self.used > self.capacity and (len(self.t1) + len(self.t2)) > 1:
            self._replace(req, in_b2=False)

    def _miss(self, req: Request) -> None:
        node = self._where.get(req.key)
        if node is not None and node.data == B1:
            # Ghost hit in B1: grow p (favour recency).
            delta = max(node.size, self.b2.bytes // max(len(self.b1), 1))
            self.p = min(self.p + delta, self.capacity)
            self.b1.unlink(node)
            self._make_room(req, in_b2=False)
            node.size = req.size
            node.data = T2
            self.t2.push_mru(node)
            self.used += req.size
        elif node is not None and node.data == B2:
            # Ghost hit in B2: shrink p (favour frequency).
            delta = max(node.size, self.b1.bytes // max(len(self.b2), 1))
            self.p = max(self.p - delta, 0)
            self.b2.unlink(node)
            self._make_room(req, in_b2=True)
            node.size = req.size
            node.data = T2
            self.t2.push_mru(node)
            self.used += req.size
        else:
            # Cold miss: admit into T1.
            self._make_room(req, in_b2=False)
            node = Node(req.key, req.size)
            node.data = T1
            self.t1.push_mru(node)
            self._where[req.key] = node
            self.used += req.size
            self._ghost_trim()

    def __len__(self) -> int:
        return len(self.t1) + len(self.t2)

    def metadata_bytes(self) -> int:
        # Resident inodes plus ghost metadata (key + size ≈ 24 bytes each).
        return 110 * len(self) + 24 * (len(self.b1) + len(self.b2))
