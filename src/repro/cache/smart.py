""":class:`SmartCache` — use SCIP (or any policy in the zoo) as an actual
cache in an application, not just a simulator subject.

:class:`SmartCache` wraps a policy with a dict-like get/put interface and
takes care of the bookkeeping a replay engine normally does — logical
clocks, request construction, hit/miss accounting::

    from repro.api import SmartCache

    cache = SmartCache(capacity_bytes=512 * 2**20)   # SCIP by default
    value = cache.get("user:42")                      # None on a miss
    if value is None:
        value = fetch_from_origin("user:42")
        cache.put("user:42", value)
    print(cache.stats())

Values can be arbitrary Python objects; their cache *size* defaults to a
``len()``-based estimate and can be given explicitly.  String keys are
hashed to the integer key space the policies use.  Named policies are
resolved through the unified :mod:`repro.cache.registry`.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, Hashable, Optional

from repro.cache.base import CachePolicy
from repro.sim.request import Request

__all__ = ["SmartCache"]


def _default_sizeof(value: Any) -> int:
    """Best-effort byte size of a value."""
    if isinstance(value, (bytes, bytearray, memoryview, str)):
        return max(len(value), 1)
    try:
        return max(len(value), 1) * 8  # containers: rough per-item cost
    except TypeError:
        return max(sys.getsizeof(value), 1)


class SmartCache:
    """Application-facing cache backed by any policy in the zoo.

    Parameters
    ----------
    capacity_bytes:
        Cache budget.
    policy:
        Registry name (default ``"SCIP"``) or a pre-built
        :class:`~repro.cache.base.CachePolicy` instance.
    sizeof:
        Value-size estimator; defaults to a ``len``-based heuristic.
    policy_kwargs:
        Extra constructor arguments for the named policy.
    """

    def __init__(
        self,
        capacity_bytes: int,
        policy: str | CachePolicy = "SCIP",
        sizeof: Optional[Callable[[Any], int]] = None,
        **policy_kwargs,
    ):
        if isinstance(policy, CachePolicy):
            if policy_kwargs:
                raise ValueError("policy_kwargs only apply to named policies")
            self._policy = policy
        else:
            from repro.cache.registry import make_policy

            self._policy = make_policy(policy, capacity_bytes, **policy_kwargs)
        self._sizeof = sizeof or _default_sizeof
        self._values: Dict[int, Any] = {}
        self._clock = 0

    # -- key mapping -------------------------------------------------------------
    @staticmethod
    def _key(key: Hashable) -> int:
        return hash(key)

    # -- dict-ish interface ----------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up a value; records a hit/miss with the policy.

        A miss does *not* reserve space — call :meth:`put` with the fetched
        value to admit it (read-through is :meth:`get_or_load`).
        """
        k = self._key(key)
        self._clock += 1
        if self._policy.contains(k):
            size = self._sizeof(self._values[k])
            self._policy.request(Request(self._clock, k, size))
            return self._values.get(k, default)
        return default

    def put(self, key: Hashable, value: Any, size: Optional[int] = None) -> None:
        """Insert/update a value (runs the policy's miss/hit path)."""
        k = self._key(key)
        self._clock += 1
        self._values[k] = value
        self._policy.request(Request(self._clock, k, size or self._sizeof(value)))
        self._gc()

    def get_or_load(
        self, key: Hashable, loader: Callable[[], Any], size: Optional[int] = None
    ) -> Any:
        """Read-through: return the cached value or load + admit it."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = loader()
        self.put(key, value, size=size)
        return value

    def __contains__(self, key: Hashable) -> bool:
        return self._policy.contains(self._key(key))

    def __len__(self) -> int:
        return len(self._policy)

    def invalidate(self, key: Hashable) -> bool:
        """Explicitly drop a key (origin purge).  Returns residency."""
        k = self._key(key)
        self._values.pop(k, None)
        remover = getattr(self._policy, "remove", None)
        if remover is not None:
            return remover(k) is not None
        return False  # pragma: no cover - non-queue policies keep stats only

    # -- bookkeeping --------------------------------------------------------------------
    def _gc(self) -> None:
        """Drop values whose metadata the policy has evicted.

        Values are swept opportunistically once the map doubles past the
        resident set (rather than via an eviction callback), keeping the
        facade policy-agnostic; each sweep at least halves the map, so the
        amortised cost per put is O(1).
        """
        if len(self._values) > 2 * len(self._policy) + 128:
            self._values = {
                k: v for k, v in self._values.items() if self._policy.contains(k)
            }

    def stats(self) -> dict:
        """Hit/miss statistics from the underlying policy."""
        out = self._policy.stats.as_dict()
        out["policy"] = self._policy.name
        out["used_bytes"] = self._policy.used
        out["capacity_bytes"] = self._policy.capacity
        return out
