"""Intrusive doubly-linked queue — the workhorse of LRU-family policies.

Every queue operation the paper's Algorithm 1 relies on is O(1):

* insert at the MRU (head) or LRU (tail) end,
* unlink an arbitrary node,
* promote a node one position toward the MRU end (PIPP-style),
* pop the LRU-end node (eviction).

Nodes are *intrusive*: policies attach their per-object metadata directly to
the node (key, size, insertion-position mark, hit token, …) so a cache lookup
is a single dict probe returning the node, with no secondary metadata map.

A sentinel node closes the list into a ring, removing all head/tail `None`
special cases from the hot path (per the HPC guides: keep the per-request
loop branch- and allocation-light).
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["Node", "LinkedQueue"]


class Node:
    """A queue node carrying object metadata.

    Attributes
    ----------
    key, size:
        Object identity and size in bytes.
    inserted_mru:
        Paper's ``insert_pos`` bit — ``True`` if the object was last inserted
        at the MRU position (used by SCIP's history routing and by ASC-IP).
    hit_token:
        Number of hits during the current residency (0 = never hit).
        Truthiness gives the paper's boolean hit token (§5.1); the count
        lets SCIP distinguish single-hit-then-die (P-ZRO) tenures from
        multi-hit tenures.
    data:
        Free slot for policy-specific metadata (e.g. LRU-K history, SHiP
        signature, LHD class id).
    stamp:
        Free integer slot, conventionally the insertion clock (SCIP's
        tenure estimator and LHD's ages use it).
    """

    __slots__ = ("key", "size", "prev", "next", "inserted_mru", "hit_token", "data", "stamp")

    def __init__(self, key: int, size: int):
        self.key = key
        self.size = size
        self.prev: Optional[Node] = None
        self.next: Optional[Node] = None
        self.inserted_mru: bool = True
        self.hit_token: int = 0
        self.data = None
        self.stamp = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node(key={self.key!r}, size={self.size})"


class LinkedQueue:
    """Doubly-linked list with a sentinel ring.

    Orientation: ``head`` (next of sentinel) is the **MRU** end; ``tail``
    (prev of sentinel) is the **LRU** end.  ``__len__`` is the node count and
    ``bytes`` tracks the summed node sizes, both maintained incrementally.
    """

    __slots__ = ("_sentinel", "_count", "bytes")

    def __init__(self) -> None:
        s = Node.__new__(Node)
        s.key = None  # type: ignore[assignment]
        s.size = 0
        s.prev = s
        s.next = s
        s.inserted_mru = False
        s.hit_token = 0
        s.data = None
        s.stamp = 0
        self._sentinel = s
        self._count = 0
        self.bytes = 0

    # -- observers ---------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    @property
    def head(self) -> Optional[Node]:
        """MRU-end node, or ``None`` if empty."""
        n = self._sentinel.next
        return None if n is self._sentinel else n

    @property
    def tail(self) -> Optional[Node]:
        """LRU-end node, or ``None`` if empty."""
        n = self._sentinel.prev
        return None if n is self._sentinel else n

    def __iter__(self) -> Iterator[Node]:
        """Iterate MRU → LRU.  O(n); not for the hot path."""
        n = self._sentinel.next
        while n is not self._sentinel:
            nxt = n.next  # permit unlink-while-iterating
            yield n
            n = nxt

    def iter_lru(self) -> Iterator[Node]:
        """Iterate LRU → MRU (eviction-candidate order)."""
        n = self._sentinel.prev
        while n is not self._sentinel:
            prv = n.prev
            yield n
            n = prv

    # -- mutators (all O(1)) ------------------------------------------------
    def _link_after(self, node: Node, anchor: Node) -> None:
        node.prev = anchor
        node.next = anchor.next
        anchor.next.prev = node  # type: ignore[union-attr]
        anchor.next = node
        self._count += 1
        self.bytes += node.size

    def push_mru(self, node: Node) -> None:
        """Insert at the MRU (head) end."""
        self._link_after(node, self._sentinel)

    def push_lru(self, node: Node) -> None:
        """Insert at the LRU (tail) end."""
        self._link_after(node, self._sentinel.prev)  # type: ignore[arg-type]

    def insert_before(self, node: Node, anchor: Node) -> None:
        """Insert ``node`` immediately toward-MRU of ``anchor``."""
        self._link_after(node, anchor.prev)  # type: ignore[arg-type]

    def insert_after(self, node: Node, anchor: Node) -> None:
        """Insert ``node`` immediately toward-LRU of ``anchor``."""
        self._link_after(node, anchor)

    def unlink(self, node: Node) -> Node:
        """Remove an arbitrary resident node.  The node must be linked."""
        node.prev.next = node.next  # type: ignore[union-attr]
        node.next.prev = node.prev  # type: ignore[union-attr]
        node.prev = None
        node.next = None
        self._count -= 1
        self.bytes -= node.size
        return node

    def pop_lru(self) -> Node:
        """Remove and return the LRU-end node (the eviction victim)."""
        n = self._sentinel.prev
        if n is self._sentinel:
            raise IndexError("pop_lru from empty queue")
        return self.unlink(n)  # type: ignore[arg-type]

    def pop_mru(self) -> Node:
        """Remove and return the MRU-end node."""
        n = self._sentinel.next
        if n is self._sentinel:
            raise IndexError("pop_mru from empty queue")
        return self.unlink(n)  # type: ignore[arg-type]

    def move_to_mru(self, node: Node) -> None:
        """Classic LRU promotion: splice the node out and re-link at the head.

        Implemented as a direct 8-pointer splice rather than
        ``unlink``+``push_mru`` — this runs once per cache hit in every
        LRU-family policy, so the two saved method calls (and the redundant
        count/bytes churn) are measurable on the replay hot path.
        """
        prev = node.prev
        nxt = node.next
        prev.next = nxt  # type: ignore[union-attr]
        nxt.prev = prev  # type: ignore[union-attr]
        s = self._sentinel
        head = s.next
        node.prev = s
        node.next = head
        head.prev = node  # type: ignore[union-attr]
        s.next = node

    def move_to_lru(self, node: Node) -> None:
        """Demote to the tail (used by LIP-style hit handling variants)."""
        prev = node.prev
        nxt = node.next
        prev.next = nxt  # type: ignore[union-attr]
        nxt.prev = prev  # type: ignore[union-attr]
        s = self._sentinel
        tail = s.prev
        node.next = s
        node.prev = tail
        tail.next = node  # type: ignore[union-attr]
        s.prev = node

    def promote_one(self, node: Node) -> None:
        """PIPP promotion: swap the node with its toward-MRU neighbour.

        A node already at the MRU end stays put.  O(1) pointer splice.
        """
        prev = node.prev
        if prev is self._sentinel or prev is None:
            return
        # Swap ``prev`` and ``node`` in place: before = (a, prev, node, b),
        # after = (a, node, prev, b).  No count/bytes change.
        a = prev.prev
        b = node.next
        a.next = node  # type: ignore[union-attr]
        node.prev = a
        node.next = prev
        prev.prev = node
        prev.next = b
        b.prev = prev  # type: ignore[union-attr]

    def keys(self) -> list:
        """Snapshot of keys MRU → LRU.  O(n); diagnostics only."""
        return [n.key for n in self]

    def check_invariants(self) -> None:
        """Verify link symmetry and the count/bytes accounting.

        Used by the property-based tests; raises ``AssertionError`` on any
        corruption.  O(n).
        """
        count = 0
        total = 0
        n = self._sentinel
        while True:
            assert n.next.prev is n, "broken forward/backward link"  # type: ignore[union-attr]
            n = n.next  # type: ignore[assignment]
            if n is self._sentinel:
                break
            count += 1
            total += n.size
        assert count == self._count, f"count mismatch: {count} != {self._count}"
        assert total == self.bytes, f"bytes mismatch: {total} != {self.bytes}"
