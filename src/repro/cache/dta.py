"""DTA — insertion-policy selection by Decision Tree Analysis
(Khan & Jiménez, ICCD'10).

The original profiles a handful of candidate insertion policies with *set
dueling*, then runs a decision-tree analysis over the duel outcomes to pick
the policy for the follower sets, re-evaluating every epoch.  We reproduce
that structure for an object cache:

* candidate policies: MRU-insert, LRU-insert, bimodal(1/32), bimodal(1/2);
* each candidate "leads" a sampled key-group whose misses are tallied;
* every ``epoch`` requests, a depth-2 decision tree over the tallies (the
  pairwise duel outcomes) selects the policy followers use next epoch.

The paper classifies DTA among "learning-based" insertion policies whose CPU
cost exceeds simple heuristics — our epoch analysis reproduces that profile.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cache.base import LRU_POS, MRU_POS, QueueCache
from repro.sim.request import Request

__all__ = ["DTACache"]


class DTACache(QueueCache):
    """Decision-tree-analysed adaptive insertion."""

    name = "DTA"

    #: Candidate insertion policies: probability of inserting at MRU.
    _CANDIDATES: List[float] = [1.0, 0.0, 1 / 32, 0.5]
    _GROUPS = 64  # key-hash groups; first len(_CANDIDATES) groups are leaders

    def __init__(self, capacity: int, epoch: int = 4096, rng: Optional[random.Random] = None):
        super().__init__(capacity)
        self.epoch = epoch
        self.rng = rng or random.Random(0)
        self._leader_misses = [0] * len(self._CANDIDATES)
        self._leader_reqs = [1] * len(self._CANDIDATES)
        self._chosen = 0  # index into _CANDIDATES used by followers
        self._since_epoch = 0

    # -- the "decision tree analysis" over duel outcomes -----------------------
    def _analyse(self) -> int:
        """Depth-2 tree: first split on MRU-vs-LRU duel, then refine with the
        bimodal candidates — mirrors the original's tree over duel features."""
        rates = [m / r for m, r in zip(self._leader_misses, self._leader_reqs)]
        mru, lru, bip_lo, bip_hi = rates
        if mru <= lru:
            # Recency-friendly phase: MRU unless light bimodal beats it.
            return 2 if bip_lo < mru else 0
        # Thrash phase: LRU-lean, unless half-and-half bimodal wins.
        return 3 if bip_hi < lru else 1

    def _maybe_epoch(self) -> None:
        self._since_epoch += 1
        if self._since_epoch >= self.epoch:
            self._chosen = self._analyse()
            self._leader_misses = [0] * len(self._CANDIDATES)
            self._leader_reqs = [1] * len(self._CANDIDATES)
            self._since_epoch = 0

    def _group(self, key: int) -> int:
        return hash(key) % self._GROUPS

    def request(self, req: Request) -> bool:
        g = self._group(req.key)
        if g < len(self._CANDIDATES):
            self._leader_reqs[g] += 1
            if not self._lookup(req.key):
                self._leader_misses[g] += 1
        self._maybe_epoch()
        return super().request(req)

    def _insert_position(self, req: Request) -> int:
        g = self._group(req.key)
        p_mru = (
            self._CANDIDATES[g]
            if g < len(self._CANDIDATES)
            else self._CANDIDATES[self._chosen]
        )
        return MRU_POS if self.rng.random() < p_mru else LRU_POS
