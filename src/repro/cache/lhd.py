"""LHD — Least Hit Density (Beckmann, Chen & Cidon, NSDI'18).

LHD ranks objects by *hit density*: the expected hits an object will deliver
per byte·time of cache space it occupies, estimated from the empirical hit
and eviction age distributions of its *class*.  Eviction samples a fixed
number of resident objects and evicts the lowest-density one — no queue at
all, matching the original design.

Classes here combine a log₂ size bucket with a coarse "age at last hit"
bucket, and class statistics (hit/eviction age histograms in coarsened age
buckets) decay periodically via exponential smoothing so the estimator
tracks workload drift, as in the paper.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cache.base import CachePolicy
from repro.sim.request import Request

__all__ = ["LHDCache"]

_AGE_BUCKETS = 32
_SIZE_CLASSES = 24


class _ClassStats:
    """Per-class hit/eviction age histograms and the derived hit density."""

    __slots__ = ("hits", "evictions", "density")

    def __init__(self) -> None:
        self.hits = [1.0] * _AGE_BUCKETS       # +1 smoothing
        self.evictions = [1.0] * _AGE_BUCKETS
        self.density = [1.0] * _AGE_BUCKETS

    def recompute(self) -> None:
        """Hit density at age a ≈ P(hit | alive at a) over expected remaining
        lifetime — computed with the standard backwards recurrence."""
        events_beyond = 0.0
        hits_beyond = 0.0
        lifetime_beyond = 0.0
        for a in range(_AGE_BUCKETS - 1, -1, -1):
            events_beyond += self.hits[a] + self.evictions[a]
            hits_beyond += self.hits[a]
            lifetime_beyond += events_beyond
            self.density[a] = hits_beyond / max(lifetime_beyond, 1e-9)

    def decay(self, factor: float) -> None:
        for a in range(_AGE_BUCKETS):
            self.hits[a] *= factor
            self.evictions[a] *= factor


class _Obj:
    __slots__ = ("key", "size", "last_access", "size_class")

    def __init__(self, key: int, size: int, now: int):
        self.key = key
        self.size = size
        self.last_access = now
        self.size_class = min(max(size, 1).bit_length(), _SIZE_CLASSES - 1)


class LHDCache(CachePolicy):
    """Sampling-based least-hit-density eviction.

    Parameters
    ----------
    sample:
        Eviction candidates drawn per eviction (original: 64; we default 32
        to keep the Python hot path within the Fig 11 cost envelope).
    age_coarsening:
        Requests per age bucket (adapts nothing; fixed coarsening).
    reconfig_interval:
        Requests between statistics decay + density recomputation.
    """

    name = "LHD"

    def __init__(
        self,
        capacity: int,
        sample: int = 32,
        age_coarsening: Optional[int] = None,
        reconfig_interval: int = 20000,
        seed: int = 0,
    ):
        super().__init__(capacity)
        self.sample = sample
        # Default coarsening: the age buckets should resolve young ages
        # finely (most hits arrive within a fraction of a lifetime) while
        # still spanning a couple of lifetimes overall.  Estimated resident
        # objects ≈ capacity / 44 KB (the CDN mean object size).
        est_objects = max(capacity // (44 * 1024), 16)
        self.age_coarsening = age_coarsening or max(est_objects // 16, 1)
        self.reconfig_interval = reconfig_interval
        self.rng = random.Random(seed)
        self._objs: Dict[int, _Obj] = {}
        self._keys: List[int] = []          # sampling pool (lazy-compacted)
        self._key_pos: Dict[int, int] = {}
        self._classes: Dict[int, _ClassStats] = {}

    # -- class/age helpers ----------------------------------------------------
    def _age_bucket(self, obj: _Obj) -> int:
        age = (self.clock - obj.last_access) // self.age_coarsening
        return min(int(age), _AGE_BUCKETS - 1)

    def _class(self, obj: _Obj) -> _ClassStats:
        cs = self._classes.get(obj.size_class)
        if cs is None:
            cs = _ClassStats()
            cs.recompute()
            self._classes[obj.size_class] = cs
        return cs

    def _hit_density(self, obj: _Obj) -> float:
        cs = self._class(obj)
        return cs.density[self._age_bucket(obj)] / max(obj.size, 1)

    def _maybe_reconfig(self) -> None:
        if self.clock % self.reconfig_interval == 0:
            for cs in self._classes.values():
                cs.decay(0.9)
                cs.recompute()

    # -- pool maintenance --------------------------------------------------------
    def _pool_add(self, key: int) -> None:
        self._key_pos[key] = len(self._keys)
        self._keys.append(key)

    def _pool_remove(self, key: int) -> None:
        pos = self._key_pos.pop(key)
        last = self._keys.pop()
        if last != key:
            self._keys[pos] = last
            self._key_pos[last] = pos

    # -- CachePolicy ----------------------------------------------------------------
    def _lookup(self, key: int) -> bool:
        return key in self._objs

    def _hit(self, req: Request) -> None:
        obj = self._objs[req.key]
        cs = self._class(obj)
        cs.hits[self._age_bucket(obj)] += 1.0
        if obj.size != req.size:
            self.used += req.size - obj.size
            obj.size = req.size
        obj.last_access = self.clock
        while self.used > self.capacity and len(self._objs) > 1:
            self._evict_one()
        self._maybe_reconfig()

    def _miss(self, req: Request) -> None:
        while self.used + req.size > self.capacity and self._objs:
            self._evict_one()
        obj = _Obj(req.key, req.size, self.clock)
        self._objs[req.key] = obj
        self._pool_add(req.key)
        self.used += req.size
        self._maybe_reconfig()

    def _evict_one(self) -> None:
        n = len(self._keys)
        best: Optional[_Obj] = None
        best_d = float("inf")
        for _ in range(min(self.sample, n)):
            key = self._keys[self.rng.randrange(n)]
            obj = self._objs[key]
            d = self._hit_density(obj)
            if d < best_d:
                best_d = d
                best = obj
        assert best is not None
        cs = self._class(best)
        cs.evictions[self._age_bucket(best)] += 1.0
        self._pool_remove(best.key)
        del self._objs[best.key]
        self.used -= best.size
        self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._objs)

    def metadata_bytes(self) -> int:
        return 110 * len(self) + 8 * 2 * _AGE_BUCKETS * max(len(self._classes), 1)
