"""LRB — Learning Relaxed Belady (Song et al., NSDI'20), from scratch.

LRB learns to imitate a *relaxed* Belady oracle: instead of evicting the
object with the farthest next access, it suffices to evict *any* object
whose next access lies beyond the **Belady boundary** (a fixed horizon).
That relaxation turns eviction into a far easier prediction problem:

* a **memory window** bounds how far back training information reaches;
* every access generates a potential training sample — the features of the
  object at some earlier time, labelled with the (log) time until this
  access; objects unseen for a full window get the "beyond boundary" label;
* a GBM regressor (ours: :class:`repro.ml.gbm.GBMRegressor`) is retrained
  periodically on the accumulated samples;
* eviction samples resident candidates, predicts each one's time to next
  access, and evicts the farthest-predicted candidate.

The learning machinery lives in :class:`RelaxedBeladyLearner` so that the
SCIP-enhanced variant (:class:`repro.core.enhance.SCIPLRB`, Figure 12) can
reuse the identical victim selector under SCIP's insertion/promotion — the
paper's point that SCIP "can be adapted to the learning domain of the
original method".

Until the first model is trained, eviction falls back to the LRU end — the
paper notes LRB uses "the most basic policy like LRU" for insertion and
promotion, which is exactly the gap SCIP-LRB fills.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from repro.cache.base import QueueCache
from repro.cache.queue import Node
from repro.ml.features import N_FEATURES, FeatureTracker
from repro.ml.gbm import GBMRegressor
from repro.sim.request import Request

__all__ = ["RelaxedBeladyLearner", "LRBCache"]


class RelaxedBeladyLearner:
    """The learned time-to-next-access predictor behind LRB.

    Host policies call :meth:`on_access` for every request (hit or miss),
    :meth:`track_insert` / :meth:`track_evict` to maintain the candidate
    pool, and :meth:`choose_victim_key` when they need an eviction victim.
    """

    def __init__(
        self,
        memory_window: int = 8_000,
        sample: int = 32,
        retrain_interval: int = 8_000,
        max_samples: int = 8_192,
        n_trees: int = 16,
        seed: int = 0,
    ):
        if memory_window < 1:
            raise ValueError(f"memory_window must be >= 1, got {memory_window}")
        self.memory_window = memory_window
        self.sample = sample
        self.retrain_interval = retrain_interval
        self.max_samples = max_samples
        self.n_trees = n_trees
        self.rng = random.Random(seed)
        self.tracker = FeatureTracker(edc_base_halflife=memory_window / 16)
        self.model: Optional[GBMRegressor] = None
        self._pending: Dict[int, tuple] = {}  # key -> (features, time)
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._since_train = 0
        self.trainings = 0
        self._keys: List[int] = []
        self._key_pos: Dict[int, int] = {}

    # -- samples ----------------------------------------------------------------
    def _boundary_label(self) -> float:
        return float(np.log2(2.0 * self.memory_window))

    def _add_sample(self, x: np.ndarray, label: float) -> None:
        if len(self._X) >= self.max_samples:
            i = self.rng.randrange(self.max_samples)
            self._X[i] = x
            self._y[i] = label
        else:
            self._X.append(x)
            self._y.append(label)

    def on_access(self, key: int, size: int, clock: int) -> None:
        """Per-request bookkeeping: harvest the pending label, refresh the
        feature state, stage a new pending sample, maybe retrain."""
        pend = self._pending.pop(key, None)
        if pend is not None:
            x, t = pend
            gap = clock - t
            label = (
                self._boundary_label()
                if gap > self.memory_window
                else float(np.log2(max(gap, 1)))
            )
            self._add_sample(x, label)
        self.tracker.touch(key, size, clock)
        x = self.tracker.features(key, clock)
        if x is not None:
            self._pending[key] = (x, clock)
        self._maybe_train(clock)

    def _maybe_train(self, clock: int) -> None:
        self._since_train += 1
        if self._since_train < self.retrain_interval:
            return
        self._since_train = 0
        horizon = clock - self.memory_window
        expired = [k for k, (_, t) in self._pending.items() if t < horizon]
        for k in expired:
            x, _ = self._pending.pop(k)
            self._add_sample(x, self._boundary_label())
        if len(self._X) >= 256:
            X = np.vstack(self._X)
            y = np.asarray(self._y)
            self.model = GBMRegressor(
                n_estimators=self.n_trees, max_depth=3, learning_rate=0.3
            ).fit(X, y)
            self.trainings += 1

    # -- candidate pool -----------------------------------------------------------
    def track_insert(self, key: int) -> None:
        self._key_pos[key] = len(self._keys)
        self._keys.append(key)

    def track_evict(self, key: int) -> None:
        pos = self._key_pos.pop(key, None)
        if pos is None:
            return
        last = self._keys.pop()
        if last != key:
            self._keys[pos] = last
            self._key_pos[last] = pos

    # -- eviction ---------------------------------------------------------------------
    def choose_victim_key(self, clock: int) -> Optional[int]:
        """Farthest-predicted key among sampled candidates, or ``None`` when
        untrained / pool too small (host falls back to its base victim)."""
        if self.model is None or len(self._keys) <= self.sample:
            return None
        n = len(self._keys)
        cand = [self._keys[self.rng.randrange(n)] for _ in range(self.sample)]
        X = np.empty((len(cand), N_FEATURES))
        for i, k in enumerate(cand):
            x = self.tracker.features(k, clock)
            X[i] = x if x is not None else 32.0
        return cand[int(np.argmax(self.model.predict(X)))]

    def metadata_bytes(self) -> int:
        return (
            self.tracker.metadata_bytes()
            + (N_FEATURES * 8 + 8) * len(self._X)
            + 64 * len(self._pending)
            + 4096 * (self.n_trees if self.model else 0)
        )


class LRBCache(QueueCache):
    """LRB with plain LRU insertion/promotion (the original's choice)."""

    name = "LRB"

    def __init__(self, capacity: int, **learner_kwargs):
        super().__init__(capacity)
        self.learner = RelaxedBeladyLearner(**learner_kwargs)

    def request(self, req: Request) -> bool:
        self.learner.on_access(req.key, req.size, self.clock + 1)
        return super().request(req)

    def _on_insert(self, node: Node, req: Request) -> None:
        self.learner.track_insert(req.key)

    def _on_evict(self, node: Node) -> None:
        self.learner.track_evict(node.key)

    def _choose_victim(self) -> Node:
        key = self.learner.choose_victim_key(self.clock)
        if key is None:
            tail = self.queue.tail
            assert tail is not None
            return tail
        return self.index[key]

    def metadata_bytes(self) -> int:
        return 110 * len(self) + self.learner.metadata_bytes()
