"""Belady-Size — an offline size-aware bound tighter than classic MIN on
the *object* miss ratio.

Classic Belady ignores sizes; with variable objects, evicting one huge
far-future object can retain many small near-future ones.  This oracle
ranks residents by ``size × next_access_distance`` — the byte·time of cache
space the object consumes before paying its single future hit — and evicts
the most expensive one.
Greedy size-aware MIN is not optimal (offline caching with sizes is
NP-hard), but it is a standard stronger baseline and lower-bounds typically
below classic MIN on object miss ratio for CDN size distributions.

Included as an extension beyond the paper's evaluation (which uses classic
Belady); the benches report both floors.
"""

from __future__ import annotations

import heapq
from typing import Dict

from repro.cache.base import CachePolicy
from repro.sim.request import NO_NEXT_ACCESS, Request

__all__ = ["BeladySizeCache"]


class BeladySizeCache(CachePolicy):
    """Greedy size-aware offline oracle (evict max size × distance)."""

    name = "Belady-Size"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._next: Dict[int, int] = {}
        self._sizes: Dict[int, int] = {}
        self._heap: list = []  # (-ratio, key, next_access) lazy entries

    def _cost(self, req_next: int, size: int) -> float:
        """Byte·time consumed before the next hit (eviction score)."""
        return float(max(req_next - self.clock, 1)) * max(size, 1)

    def _refresh(self, req: Request) -> None:
        self._next[req.key] = req.next_access
        heapq.heappush(
            self._heap,
            (-self._cost(req.next_access, req.size), req.key, req.next_access),
        )

    def _lookup(self, key: int) -> bool:
        return key in self._sizes

    def _hit(self, req: Request) -> None:
        if self._sizes[req.key] != req.size:
            self.used += req.size - self._sizes[req.key]
            self._sizes[req.key] = req.size
        self._refresh(req)
        while self.used > self.capacity and len(self._sizes) > 1:
            self._evict_worst()

    def _miss(self, req: Request) -> None:
        if req.next_access == NO_NEXT_ACCESS:
            self.stats.bypasses += 1
            return
        while self.used + req.size > self.capacity and self._sizes:
            self._evict_worst()
        self._sizes[req.key] = req.size
        self.used += req.size
        self._refresh(req)

    def _evict_worst(self) -> None:
        while self._heap:
            _, key, nxt = heapq.heappop(self._heap)
            if key in self._sizes and self._next.get(key) == nxt:
                self.used -= self._sizes.pop(key)
                del self._next[key]
                self.stats.evictions += 1
                return
        raise RuntimeError("heap exhausted with resident objects remaining")

    def __len__(self) -> int:
        return len(self._sizes)
