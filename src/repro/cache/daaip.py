"""DAAIP — Deadblock Aware Adaptive Insertion Policy (Mahto et al., ICCD'17).

DAAIP predicts *dead-on-arrival* objects ("deadblocks" — the CPU-cache name
for what the paper calls ZROs) using a reuse history table, and steers
predicted-dead insertions to the LRU position.  The table is trained from
eviction outcomes: a victim evicted without any hit strengthens the dead
prediction for its signature; reuse weakens it.  An adaptive *bypass
confidence* additionally demotes repeat offenders even further by refusing
promotion on their first hit.

Signatures are the same pure key-group hash used by our SHiP port (the
original indexes its tables by PC; size is deliberately kept out so the
comparison with the size-threshold ASC-IP stays meaningful).
"""

from __future__ import annotations

from repro.cache.base import LRU_POS, MRU_POS, QueueCache
from repro.cache.queue import Node
from repro.sim.request import Request

__all__ = ["DAAIPCache"]


class DAAIPCache(QueueCache):
    """Deadblock-aware adaptive insertion.

    Parameters
    ----------
    table_size:
        Entries in the dead-prediction table.
    dead_threshold:
        Counter value at or above which an insertion is predicted dead.
    max_counter:
        Saturation ceiling.
    """

    name = "DAAIP"

    def __init__(
        self,
        capacity: int,
        table_size: int = 16384,
        dead_threshold: int = 2,
        max_counter: int = 3,
    ):
        super().__init__(capacity)
        self.table_size = table_size
        self.dead_threshold = dead_threshold
        self.max_counter = max_counter
        self._dead = [0] * table_size
        # Global duelling counter adapting the threshold's aggressiveness:
        # high values mean dead predictions have been paying off.
        self._confidence = 0

    def _signature(self, key: int, size: int) -> int:
        return (hash(key) // 64) % self.table_size

    def _insert_position(self, req: Request) -> int:
        sig = self._signature(req.key, req.size)
        thr = self.dead_threshold if self._confidence >= 0 else self.dead_threshold + 1
        return LRU_POS if self._dead[sig] >= thr else MRU_POS

    def _on_insert(self, node: Node, req: Request) -> None:
        node.data = self._signature(req.key, req.size)

    def _on_hit(self, node: Node, req: Request) -> None:
        sig = node.data
        if sig is not None and self._dead[sig] > 0:
            self._dead[sig] -= 1
            if not node.inserted_mru:
                # We predicted dead but it was reused: lose confidence.
                self._confidence = max(self._confidence - 1, -1024)
        # First hit after a dead prediction stays put (cautious promotion);
        # subsequent hits get full MRU promotion.
        if not node.inserted_mru and not node.hit_token:
            node.hit_token = True
            self.queue.promote_one(node)
            return
        self.queue.move_to_mru(node)

    def _on_evict(self, node: Node) -> None:
        sig = node.data
        if sig is None:
            return
        if not node.hit_token:
            if self._dead[sig] < self.max_counter:
                self._dead[sig] += 1
            if not node.inserted_mru:
                # Dead prediction confirmed by a dead eviction.
                self._confidence = min(self._confidence + 1, 1024)

    def metadata_bytes(self) -> int:
        return 110 * len(self) + self.table_size
