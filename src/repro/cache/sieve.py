"""SIEVE and S3-FIFO — post-paper (2023/24) eviction designs, included as
extensions.

Both come from the same research line as GL-Cache (Yang et al.) and appeared
right after the paper's publication; they make interesting comparison points
because they attack the *same* ZRO problem from the eviction side with
strictly simpler machinery:

* **SIEVE** (NSDI'24) — a FIFO queue with a moving *hand* and one visited
  bit per object.  The hand sweeps from tail to head; visited objects are
  spared (bit cleared, hand moves on) **without being moved**, unvisited
  ones are evicted in place.  New objects insert at the head.  Lazy
  promotion + quick demotion: one-hit wonders never get a second tour.
* **S3-FIFO** (SOSP'23) — three FIFO queues: a small probationary queue
  (~10 % of capacity), a main queue, and a ghost queue.  Objects evicted
  from the small queue without reuse go to the ghost; a miss found in the
  ghost enters the main queue directly.  Objects in main get up to two
  second chances via an access counter.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.base import CachePolicy
from repro.cache.queue import LinkedQueue, Node
from repro.core.history import HistoryList
from repro.sim.request import Request

__all__ = ["SieveCache", "S3FIFOCache"]


class SieveCache(CachePolicy):
    """SIEVE: FIFO + visited-bit hand, no promotion moves."""

    name = "SIEVE"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self.queue = LinkedQueue()  # head = newest
        self.index: Dict[int, Node] = {}
        self._hand: Optional[Node] = None

    def _lookup(self, key: int) -> bool:
        return key in self.index

    def _hit(self, req: Request) -> None:
        node = self.index[req.key]
        node.data = True  # visited bit — the only state a hit touches
        if node.size != req.size:
            self.used += req.size - node.size
            self.queue.bytes += req.size - node.size
            node.size = req.size
        while self.used > self.capacity and len(self.queue) > 1:
            self._evict_one()

    def _miss(self, req: Request) -> None:
        while self.used + req.size > self.capacity and self.index:
            self._evict_one()
        node = Node(req.key, req.size)
        node.data = False
        self.queue.push_mru(node)
        self.index[req.key] = node
        self.used += req.size

    def _evict_one(self) -> None:
        # The hand starts at the tail and sweeps toward the head, surviving
        # across evictions (this retention of position is SIEVE's point).
        hand = self._hand
        if hand is None or hand.prev is None:  # unlinked or uninitialised
            hand = self.queue.tail
        while hand is not None and hand.data:
            hand.data = False
            hand = hand.prev if hand.prev is not None and hand.prev.key is not None else None
            if hand is None:
                hand = self.queue.tail
        assert hand is not None
        nxt = hand.prev if hand.prev is not None and hand.prev.key is not None else None
        self.queue.unlink(hand)
        del self.index[hand.key]
        self.used -= hand.size
        self.stats.evictions += 1
        self._hand = nxt

    def __len__(self) -> int:
        return len(self.index)


class S3FIFOCache(CachePolicy):
    """S3-FIFO: small + main + ghost FIFO queues.

    Parameters
    ----------
    small_frac:
        Byte share of the probationary small queue (original: 10 %).
    ghost_frac:
        Ghost-queue byte budget as a fraction of capacity (original: ~90 %
        of the main queue's object count; byte-budgeting is the natural
        size-aware translation).
    """

    name = "S3-FIFO"

    _MAX_FREQ = 3

    def __init__(self, capacity: int, small_frac: float = 0.1, ghost_frac: float = 0.9):
        super().__init__(capacity)
        if not 0.0 < small_frac < 1.0:
            raise ValueError(f"small_frac must be in (0, 1), got {small_frac}")
        self.small_cap = max(int(capacity * small_frac), 1)
        self.small = LinkedQueue()
        self.main = LinkedQueue()
        self.ghost = HistoryList(int(capacity * ghost_frac))
        self._where: Dict[int, tuple] = {}  # key -> (node, 'small'|'main')

    def _lookup(self, key: int) -> bool:
        return key in self._where

    def _hit(self, req: Request) -> None:
        node, _ = self._where[req.key]
        node.data = min((node.data or 0) + 1, self._MAX_FREQ)
        if node.size != req.size:
            self.used += req.size - node.size
            node.size = req.size
        while self.used > self.capacity and len(self._where) > 1:
            self._evict_one()

    def _miss(self, req: Request) -> None:
        while self.used + req.size > self.capacity and self._where:
            self._evict_one()
        node = Node(req.key, req.size)
        node.data = 0
        if self.ghost.delete(req.key):
            # Recently evicted from small without reuse, yet came back:
            # skip probation and enter the main queue.
            self.main.push_mru(node)
            self._where[req.key] = (node, "main")
        else:
            self.small.push_mru(node)
            self._where[req.key] = (node, "small")
        self.used += req.size

    def _evict_one(self) -> None:
        if self.small.bytes > self.small_cap and len(self.small):
            victim = self.small.pop_lru()
            if (victim.data or 0) > 0:
                # Reused while on probation: promote to main instead.
                victim.data = 0
                self.main.push_mru(victim)
                self._where[victim.key] = (victim, "main")
                return  # space unchanged; the caller loops again
            self.ghost.add(victim.key, victim.size)
            del self._where[victim.key]
            self.used -= victim.size
            self.stats.evictions += 1
            return
        # Evict from main with up to _MAX_FREQ second chances.
        while len(self.main):
            victim = self.main.pop_lru()
            if (victim.data or 0) > 0:
                victim.data = (victim.data or 0) - 1
                self.main.push_mru(victim)
                continue
            del self._where[victim.key]
            self.used -= victim.size
            self.stats.evictions += 1
            return
        # Main empty: drain small unconditionally.
        victim = self.small.pop_lru()
        self.ghost.add(victim.key, victim.size)
        del self._where[victim.key]
        self.used -= victim.size
        self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._where)

    def metadata_bytes(self) -> int:
        return 110 * len(self) + self.ghost.metadata_bytes()
