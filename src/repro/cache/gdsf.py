"""GDSF — GreedyDual-Size-Frequency (Cherkasova & Ciardo, HPCN'01).

Priority ``H(o) = L + freq(o) · cost(o) / size(o)`` where ``L`` is the
inflation clock: on every eviction, ``L`` rises to the victim's priority, so
long-untouched objects age out.  With unit cost this favours small, popular
objects — the classic size-aware web-cache heuristic.

Implementation: a min-heap with lazy invalidation (each access pushes a new
entry stamped with the entry's current priority; stale entries are skipped
at pop time).  Amortised O(log n) per request.
"""

from __future__ import annotations

import heapq
from typing import Dict

from repro.cache.base import CachePolicy
from repro.sim.request import Request

__all__ = ["GDSFCache"]


class GDSFCache(CachePolicy):
    """GreedyDual-Size-Frequency with unit retrieval cost."""

    name = "GDSF"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._prio: Dict[int, float] = {}   # authoritative priority
        self._freq: Dict[int, int] = {}
        self._sizes: Dict[int, int] = {}
        self._heap: list = []               # (priority, seq, key)
        self._seq = 0
        self.inflation = 0.0                # the L clock

    def _priority(self, key: int, size: int) -> float:
        return self.inflation + self._freq[key] / max(size, 1)

    def _push(self, key: int, size: int) -> None:
        p = self._priority(key, size)
        self._prio[key] = p
        self._seq += 1
        heapq.heappush(self._heap, (p, self._seq, key))

    def _lookup(self, key: int) -> bool:
        return key in self._sizes

    def _hit(self, req: Request) -> None:
        if self._sizes[req.key] != req.size:
            self.used += req.size - self._sizes[req.key]
            self._sizes[req.key] = req.size
        self._freq[req.key] += 1
        self._push(req.key, req.size)
        while self.used > self.capacity and len(self._sizes) > 1:
            self._evict_min()

    def _miss(self, req: Request) -> None:
        while self.used + req.size > self.capacity and self._sizes:
            self._evict_min()
        self._sizes[req.key] = req.size
        self._freq[req.key] = 1
        self.used += req.size
        self._push(req.key, req.size)

    def _evict_min(self) -> None:
        while self._heap:
            p, _, key = heapq.heappop(self._heap)
            if key in self._sizes and self._prio.get(key) == p:
                self.inflation = p  # age the cache up to the victim
                self.used -= self._sizes.pop(key)
                del self._prio[key]
                del self._freq[key]
                self.stats.evictions += 1
                return
        raise RuntimeError("heap exhausted with resident objects remaining")

    def __len__(self) -> int:
        return len(self._sizes)
