"""CACHEUS (Rodriguez et al., FAST'21) — LeCaR's successor.

Two changes over LeCaR, both reproduced here:

1. **Adaptive learning rate.**  The fixed 0.45 is replaced by a rate tuned
   from performance deltas with random restarts — the very mechanism the
   SCIP paper adapts into Algorithm 2.  We therefore reuse
   :class:`repro.core.learning.LearningRateController` (the SCIP and CACHEUS
   update rules are the same gradient-based stochastic hill climbing).
2. **Scan/churn-resistant experts.**  SR-LRU: a demotion front keeps
   once-accessed objects in a probationary region so scans wash through
   without displacing reused data (we realise it as insert-probationary,
   promote-on-second-access segmented LRU).  CR-LFU breaks LFU ties by MRU
   (churn resistance) rather than LRU.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.cache.base import QueueCache
from repro.cache.queue import Node
from repro.core.history import HistoryList
from repro.core.learning import LearningRateController
from repro.sim.request import Request

__all__ = ["CacheusCache"]


class CacheusCache(QueueCache):
    """CACHEUS: SR-LRU + CR-LFU experts, adaptive learning rate."""

    name = "CACHEUS"

    def __init__(self, capacity: int, update_interval: int = 1000, seed: int = 0):
        super().__init__(capacity)
        rng = random.Random(seed)
        self.rng = rng
        self.w_srlru = 0.5
        self.w_crlfu = 0.5
        self.ghost_srlru = HistoryList(capacity)
        self.ghost_crlfu = HistoryList(capacity)
        self._ghost_time: dict = {}
        self._freq: dict = {}
        self.lr = LearningRateController(initial=0.45, rng=rng)
        self.update_interval = update_interval
        self._win_hits = 0
        self._win_reqs = 0
        self._prev_rate = 0.0
        expected_n = max(capacity // (44 * 1024), 16)
        self.discount = 0.005 ** (1.0 / expected_n)

    # -- SR-LRU structure: probationary insertion, promote on reuse -----------------
    def _insert_position(self, req: Request) -> int:
        # Probationary = LRU half.  Realised by inserting at mid-queue via a
        # short bounded walk from the tail (same device as PIPP's finger).
        return 0  # LRU side; see _miss override below

    def _miss(self, req: Request) -> None:
        self._blame(req.key)
        self._make_room(req.size)
        node = Node(req.key, req.size)
        node.inserted_mru = False
        # Probationary insert: a few steps above the tail so brand-new
        # objects outrank long-cold ones but stay in the scan-wash region.
        anchor = self.queue.tail
        for _ in range(4):
            if anchor is None or anchor.prev is None or anchor.prev.key is None:
                break
            anchor = anchor.prev
        if anchor is None:
            self.queue.push_lru(node)
        else:
            self.queue.insert_before(node, anchor)
        self.index[req.key] = node
        self.used += req.size
        self._freq[req.key] = self._freq.get(req.key, 0) + 1

    def _on_hit(self, node: Node, req: Request) -> None:
        self._freq[req.key] = self._freq.get(req.key, 0) + 1
        node.inserted_mru = True
        self.queue.move_to_mru(node)  # promotion to protected front

    # -- experts --------------------------------------------------------------------------
    def _crlfu_victim(self) -> Node:
        """Least-frequent; ties broken by MRU (churn resistance)."""
        best: Optional[Node] = None
        best_f = math.inf
        for i, node in enumerate(self.queue.iter_lru()):
            if i >= 32:
                break
            f = self._freq.get(node.key, 1)
            if f <= best_f:  # '<=' keeps the most recent among equals
                best_f = f
                best = node
        assert best is not None
        return best

    def _choose_victim(self) -> Node:
        if self.rng.random() < self.w_srlru:
            tail = self.queue.tail
            assert tail is not None
            victim, chooser = tail, "srlru"
        else:
            victim, chooser = self._crlfu_victim(), "crlfu"
        victim.data = chooser
        return victim

    def _blame(self, key: int) -> None:
        t = self._ghost_time.pop(key, None)
        if t is None:
            return
        reward = self.discount ** (self.clock - t)
        lam = self.lr.value
        if self.ghost_srlru.delete(key):
            self.w_srlru *= math.exp(-lam * reward)
        elif self.ghost_crlfu.delete(key):
            self.w_crlfu *= math.exp(-lam * reward)
        total = self.w_srlru + self.w_crlfu
        self.w_srlru /= total
        self.w_crlfu = 1.0 - self.w_srlru

    def _on_evict(self, node: Node) -> None:
        chooser = node.data if node.data in ("srlru", "crlfu") else "srlru"
        if chooser == "srlru":
            self.ghost_srlru.add(node.key, node.size)
        else:
            self.ghost_crlfu.add(node.key, node.size)
        self._ghost_time[node.key] = self.clock
        if node.key not in self.ghost_srlru and node.key not in self.ghost_crlfu:
            self._freq.pop(node.key, None)
            self._ghost_time.pop(node.key, None)

    # -- adaptive learning rate ---------------------------------------------------------------
    def request(self, req: Request) -> bool:
        hit = super().request(req)
        self._win_reqs += 1
        if hit:
            self._win_hits += 1
        if self._win_reqs >= self.update_interval:
            rate = self._win_hits / self._win_reqs
            self.lr.update(rate, self._prev_rate)
            self._prev_rate = rate
            self._win_hits = 0
            self._win_reqs = 0
        return hit

    def metadata_bytes(self) -> int:
        return (
            110 * len(self)
            + self.ghost_srlru.metadata_bytes()
            + self.ghost_crlfu.metadata_bytes()
            + 16 * len(self._freq)
        )
