"""Least Frequently Used (LFU) with O(1) frequency-list structure.

Implements the classic constant-time LFU: a doubly-linked list of frequency
buckets, each holding an LRU-ordered queue of nodes with that access count.
Victim: least-frequent bucket, LRU end (ties broken by recency).  LFU is one
of LeCaR's two experts, so CACHEUS and LeCaR build on this module.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.cache.base import CachePolicy
from repro.sim.request import Request

__all__ = ["LFUCache"]


class _Entry:
    __slots__ = ("key", "size", "freq")

    def __init__(self, key: int, size: int):
        self.key = key
        self.size = size
        self.freq = 1


class LFUCache(CachePolicy):
    """Size-aware LFU with recency tie-breaking.

    ``_buckets[f]`` is an :class:`~collections.OrderedDict` of entries with
    frequency ``f`` in LRU order (oldest first).  ``_minfreq`` tracks the
    lowest non-empty bucket, giving O(1) victim selection.
    """

    name = "LFU"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._entries: Dict[int, _Entry] = {}
        self._buckets: Dict[int, OrderedDict] = {}
        self._minfreq = 0

    def _lookup(self, key: int) -> bool:
        return key in self._entries

    def _bump(self, e: _Entry) -> None:
        bucket = self._buckets[e.freq]
        del bucket[e.key]
        if not bucket:
            del self._buckets[e.freq]
            if self._minfreq == e.freq:
                self._minfreq = e.freq + 1
        e.freq += 1
        self._buckets.setdefault(e.freq, OrderedDict())[e.key] = e

    def _hit(self, req: Request) -> None:
        e = self._entries[req.key]
        if e.size != req.size:
            self.used += req.size - e.size
            e.size = req.size
        self._bump(e)
        # A grown object may overflow the cache; like LRU, keep evicting
        # until the budget holds — even the just-hit object itself leaves.
        while self.used > self.capacity and self._entries:
            self._evict_one()

    def _miss(self, req: Request) -> None:
        while self.used + req.size > self.capacity and self._entries:
            self._evict_one()
        e = _Entry(req.key, req.size)
        self._entries[req.key] = e
        self._buckets.setdefault(1, OrderedDict())[req.key] = e
        self._minfreq = 1
        self.used += req.size

    def _evict_one(self) -> Optional[int]:
        """Evict the LFU victim; returns its key (for expert frameworks)."""
        while self._minfreq not in self._buckets or not self._buckets[self._minfreq]:
            self._minfreq += 1
        bucket = self._buckets[self._minfreq]
        key, e = next(iter(bucket.items()))
        del bucket[key]
        if not bucket:
            del self._buckets[self._minfreq]
        del self._entries[key]
        self.used -= e.size
        self.stats.evictions += 1
        return key

    def peek_victim(self) -> Optional[int]:
        """Key that would be evicted next, without evicting (LeCaR needs it)."""
        if not self._entries:
            return None
        f = self._minfreq
        while f not in self._buckets or not self._buckets[f]:
            f += 1
        return next(iter(self._buckets[f]))

    def __len__(self) -> int:
        return len(self._entries)
