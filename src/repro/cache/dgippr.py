"""DGIPPR — Dynamic Genetic Insertion and Promotion for PseudoLRU
Replacement (Jiménez, MICRO'13).

The original evolves *insertion/promotion vectors* — for each access type
(miss insert, 1st hit, 2nd hit, …) a target recency position — with a
steady-state genetic algorithm whose fitness is the hit rate a chromosome
achieves on sampled leader sets.  We reproduce that faithfully at object-
cache granularity:

* a chromosome is a vector of ``GENE_COUNT`` recency fractions in [0, 1]:
  index 0 is the insertion depth for misses, index ``k`` the promotion depth
  applied on an object's ``k``-th hit (capped);
* a small population is evaluated round-robin, each chromosome controlling
  the cache for an *evaluation window*; fitness is the window hit ratio;
* after every generation, the two fittest chromosomes crossover + mutate to
  replace the weakest (steady-state GA).

Positional placement uses the same lazy finger mechanism as PIPP, with one
finger per distinct depth gene.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cache.base import QueueCache
from repro.cache.queue import Node
from repro.sim.request import Request

__all__ = ["DGIPPRCache"]

GENE_COUNT = 4  # miss-insert depth + promotion depths for hits 1..3+


class _Chromosome:
    __slots__ = ("genes", "hits", "reqs")

    def __init__(self, genes: List[float]):
        self.genes = genes
        self.hits = 0
        self.reqs = 0

    @property
    def fitness(self) -> float:
        return self.hits / self.reqs if self.reqs else 0.0


class DGIPPRCache(QueueCache):
    """Genetic insertion/promotion over an LRU-queue cache."""

    name = "DGIPPR"

    def __init__(
        self,
        capacity: int,
        population: int = 8,
        window: int = 2048,
        mutation_rate: float = 0.1,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(capacity)
        self.rng = rng or random.Random(0)
        self.window = window
        self.mutation_rate = mutation_rate
        self._pop: List[_Chromosome] = [
            _Chromosome([self.rng.random() for _ in range(GENE_COUNT)])
            for _ in range(population)
        ]
        # Seed the population with the known-good LRU chromosome (all-MRU).
        self._pop[0] = _Chromosome([1.0] * GENE_COUNT)
        self._active = 0
        self._in_window = 0

    # -- GA machinery -----------------------------------------------------------
    def _evolve(self) -> None:
        """Steady-state step: crossover the two fittest, replace the weakest."""
        ranked = sorted(range(len(self._pop)), key=lambda i: self._pop[i].fitness)
        weakest, parents = ranked[0], ranked[-2:]
        a, b = self._pop[parents[0]].genes, self._pop[parents[1]].genes
        cut = self.rng.randrange(1, GENE_COUNT)
        child = a[:cut] + b[cut:]
        for i in range(GENE_COUNT):
            if self.rng.random() < self.mutation_rate:
                child[i] = min(1.0, max(0.0, child[i] + self.rng.gauss(0, 0.2)))
        self._pop[weakest] = _Chromosome(child)
        for c in self._pop:
            c.hits = 0
            c.reqs = 0

    def _tick(self, hit: bool) -> None:
        c = self._pop[self._active]
        c.reqs += 1
        if hit:
            c.hits += 1
        self._in_window += 1
        if self._in_window >= self.window:
            self._in_window = 0
            self._active = (self._active + 1) % len(self._pop)
            if self._active == 0:
                self._evolve()

    def request(self, req: Request) -> bool:
        hit = super().request(req)
        self._tick(hit)
        return hit

    # -- placement ---------------------------------------------------------------
    def _place_at_depth(self, node: Node, frac: float) -> None:
        """Insert at ``frac`` of the queue from the LRU end (1.0 == MRU).

        Walks at most ``_MAX_WALK`` steps so cost stays bounded; beyond that
        the distinction between depths is immaterial for eviction order.
        """
        _MAX_WALK = 32
        if frac >= 0.999 or not len(self.queue):
            self.queue.push_mru(node)
            node.inserted_mru = True
            return
        node.inserted_mru = False
        steps = min(int(len(self.queue) * frac), _MAX_WALK)
        if steps == 0:
            self.queue.push_lru(node)  # depth 0 == the exact LRU position
            return
        anchor = self.queue.tail
        for _ in range(steps - 1):
            if anchor is None or anchor.prev is None or anchor.prev.key is None:
                break
            anchor = anchor.prev
        if anchor is None:
            self.queue.push_lru(node)
        else:
            self.queue.insert_before(node, anchor)

    def _miss(self, req: Request) -> None:
        self._make_room(req.size)
        node = Node(req.key, req.size)
        node.data = 0  # hit count
        self._place_at_depth(node, self._pop[self._active].genes[0])
        self.index[req.key] = node
        self.used += req.size
        self._on_insert(node, req)

    def _on_hit(self, node: Node, req: Request) -> None:
        hits = (node.data or 0) + 1
        node.data = hits
        gene = min(hits, GENE_COUNT - 1)
        frac = self._pop[self._active].genes[gene]
        self.queue.unlink(node)
        self._place_at_depth(node, frac)

    def metadata_bytes(self) -> int:
        return 110 * len(self) + 8 * GENE_COUNT * len(self._pop)
