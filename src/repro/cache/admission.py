"""Admission policies — the related-work family of §7.

The paper distinguishes *insertion-position* policies (its own territory)
from *admission* policies, which deny some objects entry altogether.  Three
canonical members are implemented over the same LRU substrate so the two
families can be compared head-to-head:

* **2Q** (Johnson & Shasha, VLDB'94) — a FIFO probation queue (``A1in``)
  plus a ghost list (``A1out``); only objects re-requested from probation
  or the ghost enter the protected LRU queue.
* **TinyLFU** (Einziger, Friedman & Manes, TOS'17) — a count-min sketch of
  recent popularity gates admission: a new object enters only if its
  estimated frequency beats the would-be victim's.
* **AdaptSize** (Berger, Sitaraman & Harchol-Balter, NSDI'17) —
  probabilistic size-aware admission ``P(admit) = e^{-size/c}`` with the
  cutoff ``c`` tuned online by comparing hit ratios across shadow values.

All three reject ZRO-ish traffic *before* it occupies the queue, which is
the same pollution SCIP handles by position — the integration tests compare
both approaches on the CDN workloads.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.cache.base import CachePolicy, QueueCache
from repro.cache.queue import LinkedQueue, Node
from repro.core.history import HistoryList
from repro.sim.request import Request

__all__ = ["TwoQCache", "TinyLFUCache", "AdaptSizeCache"]


class TwoQCache(CachePolicy):
    """2Q with byte-sized queues (Kin=25 %, Kout=50 % of capacity)."""

    name = "2Q"

    def __init__(self, capacity: int, kin: float = 0.25, kout: float = 0.5):
        super().__init__(capacity)
        self.a1in_cap = max(int(capacity * kin), 1)
        self.a1in = LinkedQueue()     # FIFO probation (resident)
        self.am = LinkedQueue()       # protected LRU (resident)
        self.a1out = HistoryList(int(capacity * kout))  # ghost metadata
        self._where: dict = {}

    def _lookup(self, key: int) -> bool:
        return key in self._where

    def _hit(self, req: Request) -> None:
        node, tag = self._where[req.key]
        if tag == "am":
            self.am.unlink(node)
        else:
            # A probation hit proves reuse: promote into Am (2Q's rule is
            # promote-on-A1out-hit; the simplified 2Q promotes probation
            # hits too, which behaves better for byte-sized web objects).
            self.a1in.unlink(node)
        if node.size != req.size:
            self.used += req.size - node.size
            node.size = req.size
        self.am.push_mru(node)
        self._where[req.key] = (node, "am")
        self._enforce()

    def _miss(self, req: Request) -> None:
        node = Node(req.key, req.size)
        if self.a1out.delete(req.key):
            # Seen recently: admit straight into the protected queue.
            self.am.push_mru(node)
            self._where[req.key] = (node, "am")
        else:
            self.a1in.push_mru(node)
            self._where[req.key] = (node, "a1in")
        self.used += req.size
        self._enforce()

    def _enforce(self) -> None:
        while self.used > self.capacity and self._where:
            if self.a1in.bytes > self.a1in_cap and len(self.a1in):
                victim = self.a1in.pop_lru()
                self.a1out.add(victim.key, victim.size)
            elif len(self.am):
                victim = self.am.pop_lru()
            else:
                victim = self.a1in.pop_lru()
                self.a1out.add(victim.key, victim.size)
            del self._where[victim.key]
            self.used -= victim.size
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._where)

    def metadata_bytes(self) -> int:
        return 110 * len(self) + self.a1out.metadata_bytes()


class _CountMinSketch:
    """4-row count-min sketch with periodic halving (TinyLFU's reset)."""

    __slots__ = ("width", "rows", "_adds", "reset_at")

    def __init__(self, width: int = 4096, reset_at: int = 100_000):
        self.width = width
        self.rows = [[0] * width for _ in range(4)]
        self._adds = 0
        self.reset_at = reset_at

    _SEEDS = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F)

    def _idx(self, key: int, row: int) -> int:
        return (hash(key) ^ self._SEEDS[row]) % self.width

    def add(self, key: int) -> None:
        for r in range(4):
            self.rows[r][self._idx(key, r)] += 1
        self._adds += 1
        if self._adds >= self.reset_at:
            self._adds //= 2
            for row in self.rows:
                for i in range(self.width):
                    row[i] >>= 1

    def estimate(self, key: int) -> int:
        return min(self.rows[r][self._idx(key, r)] for r in range(4))


class TinyLFUCache(QueueCache):
    """LRU with a TinyLFU admission gate."""

    name = "TinyLFU"

    def __init__(self, capacity: int, sketch_width: int = 4096):
        super().__init__(capacity)
        self.sketch = _CountMinSketch(width=sketch_width)

    def request(self, req: Request) -> bool:
        self.sketch.add(req.key)
        return super().request(req)

    def _miss(self, req: Request) -> None:
        # Admission duel: the newcomer must beat the would-be victim's
        # estimated frequency, otherwise it is not admitted at all.
        if self.used + req.size > self.capacity and self.queue.tail is not None:
            victim = self.queue.tail
            if self.sketch.estimate(req.key) <= self.sketch.estimate(victim.key):
                self.stats.bypasses += 1
                return
        super()._miss(req)

    def metadata_bytes(self) -> int:
        return 110 * len(self) + 4 * self.sketch.width * 2


class AdaptSizeCache(QueueCache):
    """LRU with AdaptSize's probabilistic size-aware admission.

    ``P(admit) = exp(-size / c)``; the cutoff ``c`` is retuned every
    ``tune_interval`` requests by evaluating a small grid of shadow cutoffs
    against the recent request mix (a direct, simplified stand-in for the
    original's Markov-model optimisation).
    """

    name = "AdaptSize"

    def __init__(
        self,
        capacity: int,
        init_cutoff: Optional[float] = None,
        tune_interval: int = 20_000,
        seed: int = 0,
    ):
        super().__init__(capacity)
        self.cutoff = float(init_cutoff or max(capacity / 20, 4096.0))
        self.tune_interval = tune_interval
        self.rng = random.Random(seed)
        # Recent-window bookkeeping for the shadow evaluation.
        self._window: List[tuple] = []  # (key, size)
        self._grid = (0.25, 0.5, 1.0, 2.0, 4.0)

    def request(self, req: Request) -> bool:
        self._window.append((req.key, req.size))
        if len(self._window) >= self.tune_interval:
            self._tune()
        return super().request(req)

    def _miss(self, req: Request) -> None:
        if self.rng.random() > math.exp(-req.size / self.cutoff):
            self.stats.bypasses += 1
            return
        super()._miss(req)

    def _tune(self) -> None:
        """Pick the grid multiple of the current cutoff that would have
        served the most *object hits* on the recent window (greedy shadow
        replay with a byte-budget knapsack approximation)."""
        window, self._window = self._window, []
        from collections import Counter

        counts = Counter(k for k, _ in window)
        sizes = {k: s for k, s in window}
        best_cut, best_score = self.cutoff, -1.0
        for mult in self._grid:
            cut = self.cutoff * mult
            # Expected hits if objects were admitted with e^{-s/c}: an
            # object seen n times contributes (n-1)·P(admit); byte budget
            # discounts oversubscription.
            score = 0.0
            admitted_bytes = 0.0
            for k, n in counts.items():
                p = math.exp(-sizes[k] / cut)
                score += (n - 1) * p
                admitted_bytes += sizes[k] * p
            if admitted_bytes > self.capacity:
                score *= self.capacity / admitted_bytes
            if score > best_score:
                best_score, best_cut = score, cut
        self.cutoff = min(max(best_cut, 64.0), 1e12)
