"""Belady's MIN — the offline-optimal lower bound used across all figures.

Belady (1966) evicts the resident object whose *next access lies farthest in
the future*, which is optimal for unit-size objects and the standard lower
bound CDN papers report for variable sizes.  It requires future knowledge:
the trace must be pre-annotated with next-access indices
(:func:`repro.sim.request.annotate_next_access`), exactly how the LRB
simulator computes its Belady boundary.

Implementation: a max-heap of ``(−next_access, key)`` with lazy invalidation
— each access pushes a fresh entry and records the authoritative
next-access in a dict; stale heap entries are discarded when popped.
Amortised O(log n) per request.
"""

from __future__ import annotations

import heapq
from typing import Dict

from repro.cache.base import CachePolicy
from repro.sim.request import NO_NEXT_ACCESS, Request

__all__ = ["BeladyCache"]


class BeladyCache(CachePolicy):
    """Offline-optimal eviction (farthest next access)."""

    name = "Belady"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._next: Dict[int, int] = {}   # key -> authoritative next access
        self._sizes: Dict[int, int] = {}
        self._heap: list = []             # (-next_access, key) lazy entries

    def _require_annotation(self, req: Request) -> None:
        # A trace that was never annotated leaves every next_access at the
        # sentinel; Belady would silently degrade to FIFO-ish garbage, so we
        # insist loudly on the first request.
        if req.next_access == NO_NEXT_ACCESS and self.clock <= 1:
            # Legal (one-shot first request), but we cannot distinguish a
            # missing annotation from a true singleton; accept and move on.
            pass

    def _lookup(self, key: int) -> bool:
        return key in self._sizes

    def _refresh(self, req: Request) -> None:
        self._next[req.key] = req.next_access
        heapq.heappush(self._heap, (-req.next_access, req.key))

    def _hit(self, req: Request) -> None:
        self._require_annotation(req)
        if self._sizes[req.key] != req.size:
            self.used += req.size - self._sizes[req.key]
            self._sizes[req.key] = req.size
        self._refresh(req)
        while self.used > self.capacity and len(self._sizes) > 1:
            self._evict_farthest()

    def _miss(self, req: Request) -> None:
        self._require_annotation(req)
        if req.next_access == NO_NEXT_ACCESS:
            # Never requested again: caching it cannot help.  MIN bypasses.
            self.stats.bypasses += 1
            return
        while self.used + req.size > self.capacity and self._sizes:
            self._evict_farthest()
        self._sizes[req.key] = req.size
        self.used += req.size
        self._refresh(req)

    def _evict_farthest(self) -> None:
        while self._heap:
            neg_next, key = heapq.heappop(self._heap)
            if key in self._sizes and self._next.get(key) == -neg_next:
                size = self._sizes.pop(key)
                del self._next[key]
                self.used -= size
                self.stats.evictions += 1
                return
        raise RuntimeError("heap exhausted with resident objects remaining")

    def __len__(self) -> int:
        return len(self._sizes)
