"""Least Recently Used (LRU) — the default CDN policy SCIP augments.

Insertion: MRU position.  Promotion: move to MRU on hit.  Victim: LRU end.
This is the baseline against which Figure 1 measures ZRO/P-ZRO pollution.
"""

from __future__ import annotations

from repro.cache.base import QueueCache

__all__ = ["LRUCache"]


class LRUCache(QueueCache):
    """Classic size-aware LRU.

    All three hooks are the :class:`QueueCache` defaults; the class exists to
    give the baseline a name and a stable import point.  Because nothing is
    overridden, bulk replay takes the fully-inlined fast loop in
    :meth:`QueueCache.replay` — LRU is the engine benchmark's headline
    policy for exactly that reason.
    """

    name = "LRU"
