"""LeCaR — Learning Cache Replacement (Vietri et al., HotStorage'18).

LeCaR runs two experts — LRU and LFU — and, on each eviction, follows the
expert sampled from a weight pair updated by *regret*: when a missing object
is found in an expert's ghost list, that expert is blamed (its weight decays
multiplicatively with a reward discounted by how long ago the mistake
happened).  This is the reinforcement-learning lineage the paper builds on:
SCIP applies the same machinery to *insertion position* instead of victim
selection (§2.3 cites LeCaR as the MAB precedent).

Internal structure: one LRU queue, per-object frequency counts (for the LFU
expert's victim choice), and two FIFO ghost lists sized like the cache.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.cache.base import QueueCache
from repro.cache.queue import Node
from repro.core.history import HistoryList
from repro.sim.request import Request

__all__ = ["LeCaRCache"]


class LeCaRCache(QueueCache):
    """LRU/LFU expert mixture with regret-based weights.

    Parameters
    ----------
    learning_rate:
        Multiplicative update strength (original: 0.45).
    discount:
        Per-step regret discount (original: 0.005 ** (1/N); we use the
        byte-scaled equivalent with N = expected resident object count).
    """

    name = "LeCaR"

    def __init__(
        self,
        capacity: int,
        learning_rate: float = 0.45,
        discount_base: float = 0.005,
        seed: int = 0,
    ):
        super().__init__(capacity)
        self.learning_rate = learning_rate
        self.rng = random.Random(seed)
        self.w_lru = 0.5
        self.w_lfu = 0.5
        self.ghost_lru = HistoryList(capacity)
        self.ghost_lfu = HistoryList(capacity)
        self._freq: dict = {}
        self._ghost_time: dict = {}
        # Discount so a mistake N requests old carries weight discount_base.
        expected_n = max(capacity // (44 * 1024), 16)
        self.discount = discount_base ** (1.0 / expected_n)

    # -- expert victim choices -----------------------------------------------------
    def _lfu_victim(self) -> Node:
        """Least-frequent resident; ties by LRU order.  Scans a bounded
        window from the LRU end (full-scan LFU would dominate runtime and
        the original uses a heap; the window keeps ranking near-exact since
        low-frequency objects sink to the tail anyway)."""
        best: Optional[Node] = None
        best_f = math.inf
        for i, node in enumerate(self.queue.iter_lru()):
            if i >= 32:
                break
            f = self._freq.get(node.key, 1)
            if f < best_f:
                best_f = f
                best = node
        assert best is not None
        return best

    def _choose_victim(self) -> Node:
        if self.rng.random() < self.w_lru:
            tail = self.queue.tail
            assert tail is not None
            victim, chooser = tail, "lru"
        else:
            victim, chooser = self._lfu_victim(), "lfu"
        victim.data = chooser  # remember which expert chose it
        return victim

    # -- regret updates ----------------------------------------------------------------
    def _blame(self, key: int) -> None:
        t = self._ghost_time.pop(key, None)
        if t is None:
            return
        reward = self.discount ** (self.clock - t)
        in_lru = self.ghost_lru.delete(key)
        in_lfu = self.ghost_lfu.delete(key)
        if in_lru:
            self.w_lru *= math.exp(-self.learning_rate * reward)
        elif in_lfu:
            self.w_lfu *= math.exp(-self.learning_rate * reward)
        total = self.w_lru + self.w_lfu
        self.w_lru /= total
        self.w_lfu = 1.0 - self.w_lru

    # -- hooks ----------------------------------------------------------------------------
    def _miss(self, req: Request) -> None:
        self._blame(req.key)
        super()._miss(req)

    def _on_insert(self, node: Node, req: Request) -> None:
        self._freq[req.key] = self._freq.get(req.key, 0) + 1

    def _on_hit(self, node: Node, req: Request) -> None:
        self._freq[req.key] = self._freq.get(req.key, 0) + 1
        self.queue.move_to_mru(node)

    def _on_evict(self, node: Node) -> None:
        chooser = node.data if node.data in ("lru", "lfu") else "lru"
        if chooser == "lru":
            self.ghost_lru.add(node.key, node.size)
        else:
            self.ghost_lfu.add(node.key, node.size)
        self._ghost_time[node.key] = self.clock
        # Frequency memory follows the object out (LeCaR keeps freq only for
        # residents + ghosts; prune when neither holds the key).
        if node.key not in self.ghost_lru and node.key not in self.ghost_lfu:
            self._freq.pop(node.key, None)
            self._ghost_time.pop(node.key, None)

    def metadata_bytes(self) -> int:
        return (
            110 * len(self)
            + self.ghost_lru.metadata_bytes()
            + self.ghost_lfu.metadata_bytes()
            + 16 * len(self._freq)
        )
