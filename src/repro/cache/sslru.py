"""SS-LRU — Smart Segmented LRU (Li et al., DAC'22).

A segmented LRU whose *insertion segment* is chosen by a lightweight online
learner: objects predicted to be reused enter the protected segment, the
rest enter the probationary segment.  We implement the learner as an online
logistic regression over cheap per-object features (log size, observed
frequency, recency gap), trained continuously from eviction outcomes — a
victim's label is whether it was ever hit while resident.  That matches the
original's "small model, trained on the cache's own evictions" design and
places SS-LRU in the paper's "learning-based replacement" bucket for the
Fig 10/11 comparisons.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.cache.base import CachePolicy
from repro.cache.queue import LinkedQueue, Node
from repro.sim.request import Request

__all__ = ["SSLRUCache"]

#: Segment tags stored in ``Node.stamp``.
_PROBATION = 0
_PROTECTED = 1


class _OnlineLogit:
    """Tiny SGD logistic regression: p(reuse | features)."""

    __slots__ = ("w", "b", "lr")

    def __init__(self, n_features: int, lr: float = 0.05):
        self.w = [0.0] * n_features
        self.b = 0.0
        self.lr = lr

    def predict(self, x: List[float]) -> float:
        z = self.b + sum(wi * xi for wi, xi in zip(self.w, x))
        if z >= 30:
            return 1.0
        if z <= -30:
            return 0.0
        return 1.0 / (1.0 + math.exp(-z))

    def train(self, x: List[float], y: float) -> None:
        err = self.predict(x) - y
        self.b -= self.lr * err
        for i, xi in enumerate(x):
            self.w[i] -= self.lr * err * xi


class SSLRUCache(CachePolicy):
    """Two-segment SLRU with learned insertion-segment selection.

    The resident segment rides in the intrusive node's ``stamp`` slot
    (``_PROBATION``/``_PROTECTED``); ``_where`` maps ``key -> node`` with no
    per-transition tuple allocation.  ``Node.data`` keeps the insertion-time
    feature vector for eviction-outcome training.
    """

    name = "SS-LRU"

    def __init__(self, capacity: int, protected_frac: float = 0.5):
        super().__init__(capacity)
        self.protected_cap = int(capacity * protected_frac)
        self.probation = LinkedQueue()
        self.protected = LinkedQueue()
        self._where: Dict[int, Node] = {}
        self._freq: Dict[int, int] = {}
        self._last: Dict[int, int] = {}
        self.model = _OnlineLogit(3)

    # -- features -----------------------------------------------------------------
    def _features(self, req: Request) -> List[float]:
        freq = self._freq.get(req.key, 0)
        gap = self.clock - self._last.get(req.key, self.clock)
        return [
            math.log2(max(req.size, 1)) / 32.0,
            math.log2(freq + 1) / 16.0,
            math.log2(gap + 1) / 32.0,
        ]

    # -- CachePolicy ------------------------------------------------------------------
    def _lookup(self, key: int) -> bool:
        return key in self._where

    def _hit(self, req: Request) -> None:
        node = self._where[req.key]
        q = self.probation if node.stamp == _PROBATION else self.protected
        q.unlink(node)
        if node.size != req.size:
            self.used += req.size - node.size
            node.size = req.size
        node.stamp = _PROTECTED
        self.protected.push_mru(node)
        self._freq[req.key] = self._freq.get(req.key, 0) + 1
        self._last[req.key] = self.clock
        self._demote()
        if self.used > self.capacity:
            self._make_room(0)

    def _miss(self, req: Request) -> None:
        x = self._features(req)
        node = Node(req.key, req.size)
        node.data = x  # keep features for training at eviction time
        self._make_room(req.size)
        if self.model.predict(x) >= 0.5:
            node.stamp = _PROTECTED
            self.protected.push_mru(node)
        else:
            node.inserted_mru = False
            node.stamp = _PROBATION
            self.probation.push_mru(node)
        self._where[req.key] = node
        self.used += req.size
        self._freq[req.key] = self._freq.get(req.key, 0) + 1
        self._last[req.key] = self.clock
        self._demote()

    def _demote(self) -> None:
        """Spill protected overflow into probation (classic SLRU demotion)."""
        while self.protected.bytes > self.protected_cap and len(self.protected):
            node = self.protected.pop_lru()
            node.stamp = _PROBATION
            self.probation.push_mru(node)

    def _make_room(self, need: int) -> None:
        while self.used + need > self.capacity and self._where:
            if len(self.probation):
                victim = self.probation.pop_lru()
            else:
                victim = self.protected.pop_lru()
            del self._where[victim.key]
            self.used -= victim.size
            self.stats.evictions += 1
            # Train: did the insertion-time prediction pan out?
            if victim.data is not None:
                self.model.train(victim.data, 1.0 if victim.hit_token else 0.0)
            self._freq.pop(victim.key, None)

    def __len__(self) -> int:
        return len(self._where)

    def metadata_bytes(self) -> int:
        return 110 * len(self) + 24 * (len(self._freq) + len(self._last)) + 32
