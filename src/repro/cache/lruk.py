"""LRU-K (O'Neil, O'Neil & Weikum, SIGMOD'93).

Evicts the resident object with the largest *backward K-distance*: the time
since its K-th most recent access.  Objects with fewer than K recorded
accesses have infinite K-distance and are preferred victims, broken among
themselves by plain LRU order — which is why the recency queue still matters
and why SCIP's insertion position can improve LRU-K (Figure 12): SCIP pushes
suspected ZROs to the tail of exactly that tie-breaking order.

Implementation: each node's ``data`` holds a bounded access-time history;
victim selection walks eviction candidates from the LRU end of the queue and
picks the max-K-distance among an inspection window (the full queue is never
scanned; the window is a small constant like LRB's eviction sampling).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.cache.base import QueueCache
from repro.cache.queue import Node
from repro.sim.request import Request

__all__ = ["LRUKCache"]


class LRUKCache(QueueCache):
    """Size-aware LRU-K over the shared queue substrate.

    Parameters
    ----------
    k:
        History depth (classic default 2).
    sample:
        Eviction inspection window: number of LRU-end candidates among which
        the max-K-distance victim is chosen.
    """

    name = "LRU-K"

    def __init__(self, capacity: int, k: int = 2, sample: int = 16):
        super().__init__(capacity)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.sample = sample

    def _on_insert(self, node: Node, req: Request) -> None:
        node.data = deque([self.clock], maxlen=self.k)

    def _on_hit(self, node: Node, req: Request) -> None:
        node.data.append(self.clock)
        self.queue.move_to_mru(node)

    def _kdist(self, node: Node) -> float:
        hist = node.data
        if hist is None or len(hist) < self.k:
            return float("inf")
        return self.clock - hist[0]

    def _choose_victim(self) -> Node:
        best: Optional[Node] = None
        best_d = -1.0
        for i, node in enumerate(self.queue.iter_lru()):
            if i >= self.sample:
                break
            d = self._kdist(node)
            if d == float("inf"):
                # Infinite K-distance at the LRU end: unbeatable victim.
                return node
            if d > best_d:
                best_d = d
                best = node
        assert best is not None
        return best

    def metadata_bytes(self) -> int:
        return (110 + 8 * self.k) * len(self)
