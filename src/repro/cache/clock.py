"""CLOCK — the classic second-chance approximation of LRU.

Included as substrate: production caches often deploy CLOCK instead of a
linked-list LRU because it avoids per-hit pointer writes; comparing SCIP
(which *needs* a real queue for its insertion positions) against CLOCK
quantifies what that requirement costs.  A hit merely sets the node's
reference bit; the hand sweeps from the oldest entry, clearing bits until
it finds an unreferenced victim.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.base import CachePolicy
from repro.cache.queue import LinkedQueue, Node
from repro.sim.request import Request

__all__ = ["ClockCache"]


class ClockCache(CachePolicy):
    """Size-aware CLOCK (second chance)."""

    name = "CLOCK"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self.ring = LinkedQueue()  # tail = oldest = hand position
        self.index: Dict[int, Node] = {}

    def _lookup(self, key: int) -> bool:
        return key in self.index

    def _hit(self, req: Request) -> None:
        node = self.index[req.key]
        node.data = True  # reference bit — no queue movement on hits
        if node.size != req.size:
            self.used += req.size - node.size
            self.ring.bytes += req.size - node.size
            node.size = req.size
        while self.used > self.capacity and len(self.ring) > 1:
            self._advance_hand()

    def _miss(self, req: Request) -> None:
        while self.used + req.size > self.capacity and self.index:
            self._advance_hand()
        node = Node(req.key, req.size)
        node.data = False
        self.ring.push_mru(node)
        self.index[req.key] = node
        self.used += req.size

    def _advance_hand(self) -> None:
        """Sweep: give referenced entries a second chance, evict the first
        unreferenced one."""
        while True:
            victim = self.ring.tail
            assert victim is not None
            if victim.data:
                victim.data = False
                self.ring.move_to_mru(victim)  # second chance
            else:
                self.ring.unlink(victim)
                del self.index[victim.key]
                self.used -= victim.size
                self.stats.evictions += 1
                return

    def __len__(self) -> int:
        return len(self.index)
