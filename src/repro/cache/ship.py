"""SHiP — Signature-based Hit Predictor (Wu et al., MICRO'11).

SHiP associates each insertion with a *signature* and learns, per signature,
whether objects carrying it tend to be re-referenced before eviction.  A
table of saturating counters (SHCT) is trained on eviction outcomes:
an eviction without reuse decrements the victim's signature counter; a hit
increments it.  Misses whose signature counter is zero are predicted
"distant re-reference" and inserted at the LRU position.

CPU SHiP signs by instruction PC — a grouping of *related accesses*, not a
property of the cached data.  An object cache has no PC; the closest
translation is a key-group hash (objects from the same URL shard/content
family share fate).  We deliberately do NOT fold object size into the
signature: that would graft ASC-IP's size heuristic onto SHiP and blur the
comparison the paper draws between the two.
"""

from __future__ import annotations

from repro.cache.base import LRU_POS, MRU_POS, QueueCache
from repro.cache.queue import Node
from repro.sim.request import Request

__all__ = ["SHiPCache"]


class SHiPCache(QueueCache):
    """SHiP-style predicted insertion over an LRU queue.

    Parameters
    ----------
    table_size:
        Number of SHCT entries (signature space is hashed into this).
    max_counter:
        Saturation ceiling of each counter (3-bit in the original → 7).
    """

    name = "SHiP"

    def __init__(self, capacity: int, table_size: int = 16384, max_counter: int = 7):
        super().__init__(capacity)
        self.table_size = table_size
        self.max_counter = max_counter
        # Weak-reuse start: 1 means "unknown, lean MRU" until evidence lands.
        self._shct = [1] * table_size

    def _signature(self, key: int, size: int) -> int:
        # Key-group signature: 64 adjacent key hashes share a signature,
        # the object-cache analog of instructions sharing a PC region.
        return (hash(key) // 64) % self.table_size

    def _insert_position(self, req: Request) -> int:
        sig = self._signature(req.key, req.size)
        return LRU_POS if self._shct[sig] == 0 else MRU_POS

    def _on_insert(self, node: Node, req: Request) -> None:
        node.data = self._signature(req.key, req.size)

    def _on_hit(self, node: Node, req: Request) -> None:
        sig = node.data
        if sig is not None:
            c = self._shct[sig]
            if c < self.max_counter:
                self._shct[sig] = c + 1
        self.queue.move_to_mru(node)

    def _on_evict(self, node: Node) -> None:
        if not node.hit_token and node.data is not None:
            c = self._shct[node.data]
            if c > 0:
                self._shct[node.data] = c - 1

    def metadata_bytes(self) -> int:
        return 110 * len(self) + self.table_size  # 1 byte per counter
