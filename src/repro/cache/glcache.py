"""GL-Cache — Group-level Learning (Yang et al., FAST'23), from scratch.

GL-Cache learns and evicts at *group* granularity: objects inserted close
together in time form a write group; the cache learns each group's
**utility** (hits contributed per byte·time) from groups it has already
evicted, and eviction removes the whole lowest-predicted-utility group.
Group granularity amortises both learning and eviction costs — the paper
classes GL-Cache as the current-best "active" policy (Figure 10) while
noting it keeps a basic insertion/promotion policy, the gap SCIP targets.

Our reproduction:

* groups are consecutive insertion runs of ``group_bytes`` bytes;
* group features: log mean object size, log object count, group age,
  hits-so-far per object, mean per-object access count at insertion;
* utility label at eviction: observed ``hits / (bytes · residency)``
  (log-compressed); a ridge regression (closed form, numpy) maps features
  to utility and is refit every ``retrain_interval`` group evictions;
* eviction ranks a sample of groups by predicted utility and evicts the
  worst group outright.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

import numpy as np

from repro.cache.base import CachePolicy
from repro.sim.request import Request

__all__ = ["GLCache"]

_N_GROUP_FEATURES = 5


class _Group:
    __slots__ = ("gid", "keys", "bytes", "hits", "born", "count0")

    def __init__(self, gid: int, born: int):
        self.gid = gid
        self.keys: Dict[int, int] = {}  # key -> size
        self.bytes = 0
        self.hits = 0
        self.born = born
        self.count0 = 0  # summed pre-insertion access counts (popularity)


class GLCache(CachePolicy):
    """Group-level learned eviction.

    Parameters
    ----------
    group_bytes:
        Target group size in bytes (a group seals when it exceeds this).
    sample_groups:
        Groups sampled per eviction decision.
    retrain_interval:
        Group evictions between ridge refits.
    """

    name = "GL-Cache"

    def __init__(
        self,
        capacity: int,
        group_bytes: Optional[int] = None,
        sample_groups: int = 16,
        retrain_interval: int = 64,
        max_samples: int = 4_096,
        seed: int = 0,
    ):
        super().__init__(capacity)
        self.group_bytes = group_bytes or max(capacity // 128, 1)
        self.sample_groups = sample_groups
        self.retrain_interval = retrain_interval
        self.max_samples = max_samples
        self.rng = random.Random(seed)
        self._groups: Dict[int, _Group] = {}
        self._order: List[int] = []  # group ids, insertion order
        self._open: Optional[_Group] = None
        self._next_gid = 0
        self._where: Dict[int, int] = {}  # key -> gid
        self._sizes: Dict[int, int] = {}
        self._counts: Dict[int, int] = {}  # lifetime access counts
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._w: Optional[np.ndarray] = None
        self._evictions_since_fit = 0
        self.trainings = 0

    # -- features / model -----------------------------------------------------------
    def _features(self, g: _Group) -> np.ndarray:
        n = max(len(g.keys), 1)
        return np.array(
            [
                math.log2(max(g.bytes / n, 1)),
                math.log2(n + 1),
                math.log2(max(self.clock - g.born, 1)),
                g.hits / n,
                g.count0 / n,
            ]
        )

    def _label(self, g: _Group) -> float:
        residency = max(self.clock - g.born, 1)
        utility = g.hits / (max(g.bytes, 1) * residency)
        return math.log2(utility + 1e-12)

    def _predict(self, g: _Group) -> float:
        if self._w is None:
            # Untrained: proxy utility = observed hit density over age
            # (oldest cold groups first), matching GL-Cache's bootstrap.
            return self._label(g)
        x = self._features(g)
        return float(x @ self._w[:-1] + self._w[-1])

    def _maybe_fit(self) -> None:
        self._evictions_since_fit += 1
        if self._evictions_since_fit < self.retrain_interval:
            return
        self._evictions_since_fit = 0
        if len(self._X) < 64:
            return
        X = np.vstack(self._X)
        y = np.asarray(self._y)
        Xb = np.hstack([X, np.ones((len(X), 1))])
        A = Xb.T @ Xb + 1e-3 * np.eye(Xb.shape[1])
        self._w = np.linalg.solve(A, Xb.T @ y)
        self.trainings += 1

    # -- group management ---------------------------------------------------------------
    def _open_group(self) -> _Group:
        if self._open is None or self._open.bytes >= self.group_bytes:
            g = _Group(self._next_gid, self.clock)
            self._groups[g.gid] = g
            self._order.append(g.gid)
            self._next_gid += 1
            self._open = g
        return self._open

    def _evict_group(self, g: _Group) -> None:
        # Record the training sample before discarding.
        if len(self._X) >= self.max_samples:
            i = self.rng.randrange(self.max_samples)
            self._X[i] = self._features(g)
            self._y[i] = self._label(g)
        else:
            self._X.append(self._features(g))
            self._y.append(self._label(g))
        for key, size in g.keys.items():
            del self._where[key]
            del self._sizes[key]
            self.used -= size
            self.stats.evictions += 1
        del self._groups[g.gid]
        self._order.remove(g.gid)
        if self._open is g:
            self._open = None
        self._maybe_fit()

    def _evict_one_group(self) -> None:
        sealed = [gid for gid in self._order if self._groups[gid] is not self._open]
        pool = sealed if sealed else self._order
        n = len(pool)
        cand = {pool[self.rng.randrange(n)] for _ in range(min(self.sample_groups, n))}
        # Always consider the oldest group (FIFO pressure guarantee).
        cand.add(pool[0])
        worst = min(cand, key=lambda gid: self._predict(self._groups[gid]))
        self._evict_group(self._groups[worst])

    # -- CachePolicy ------------------------------------------------------------------------
    def _lookup(self, key: int) -> bool:
        return key in self._where

    def _hit(self, req: Request) -> None:
        gid = self._where[req.key]
        g = self._groups[gid]
        g.hits += 1
        self._counts[req.key] = self._counts.get(req.key, 0) + 1
        old = self._sizes[req.key]
        if old != req.size:
            self.used += req.size - old
            g.bytes += req.size - old
            g.keys[req.key] = req.size
            self._sizes[req.key] = req.size
            while self.used > self.capacity and len(self._groups) > 1:
                self._evict_one_group()

    def _miss(self, req: Request) -> None:
        while self.used + req.size > self.capacity and self._where:
            self._evict_one_group()
        g = self._open_group()
        g.keys[req.key] = req.size
        g.bytes += req.size
        g.count0 += self._counts.get(req.key, 0)
        self._where[req.key] = g.gid
        self._sizes[req.key] = req.size
        self.used += req.size
        self._counts[req.key] = self._counts.get(req.key, 0) + 1
        # Bound the popularity map on churny traces.
        if len(self._counts) > 4 * max(len(self._where), 1) + 100_000:
            self._counts = {k: c for k, c in self._counts.items() if k in self._where}

    def __len__(self) -> int:
        return len(self._where)

    def metadata_bytes(self) -> int:
        return (
            110 * len(self)
            + 64 * len(self._groups)
            + 16 * len(self._counts)
            + (_N_GROUP_FEATURES * 8 + 8) * len(self._X)
        )
