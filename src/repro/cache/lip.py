"""LIP, BIP and DIP — the adaptive insertion family of Qureshi et al.
(ISCA'07), ported from CPU last-level caches to size-aware CDN caching.

* **LIP** (LRU Insertion Policy): every missing object is inserted at the
  LRU position; a hit promotes to MRU.  Thrash-resistant but loses hits on
  any reuse pattern longer than one step — the paper's worst comparator.
* **BIP** (Bimodal Insertion Policy): insert at MRU with small probability
  ``epsilon``, else at LRU.  The probabilistic kernel SCIP reuses (§3.1).
* **DIP** (Dynamic Insertion Policy): set-duels LRU vs BIP with a PSEL
  saturating counter and follows the winner.  CDN caches have no sets, so we
  duel on *sampled key hashes* (leader sets → leader key-groups), the
  standard translation for object caches.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cache.base import LRU_POS, MRU_POS, QueueCache
from repro.cache.queue import Node
from repro.sim.request import Request

__all__ = ["LIPCache", "BIPCache", "DIPCache"]


class LIPCache(QueueCache):
    """LRU Insertion Policy: all misses inserted at the LRU end."""

    name = "LIP"

    def _insert_position(self, req: Request) -> int:
        return LRU_POS


class BIPCache(QueueCache):
    """Bimodal Insertion Policy.

    Parameters
    ----------
    epsilon:
        Probability of an MRU insertion (paper default 1/32).
    rng:
        Seeded ``random.Random`` for reproducibility.
    """

    name = "BIP"

    def __init__(self, capacity: int, epsilon: float = 1 / 32, rng: Optional[random.Random] = None):
        super().__init__(capacity)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self.rng = rng or random.Random(0)

    def _insert_position(self, req: Request) -> int:
        return MRU_POS if self.rng.random() < self.epsilon else LRU_POS


class DIPCache(QueueCache):
    """Dynamic Insertion Policy via key-hash set dueling.

    Keys hashing into the LRU leader group always use MRU insertion; keys in
    the BIP leader group always use bimodal insertion.  Misses in a leader
    group move the 10-bit PSEL counter toward the *other* policy; follower
    keys obey PSEL's sign.
    """

    name = "DIP"

    #: Of every ``_DUEL_MOD`` hash buckets, one leads LRU and one leads BIP.
    _DUEL_MOD = 32
    _PSEL_MAX = 1024

    #: Dueling-group tags (ints — this runs once per miss on the hot path).
    LRU_LEADER = 0
    BIP_LEADER = 1
    FOLLOWER = 2

    def __init__(self, capacity: int, epsilon: float = 1 / 32, rng: Optional[random.Random] = None):
        super().__init__(capacity)
        self.epsilon = epsilon
        self.rng = rng or random.Random(0)
        self.psel = self._PSEL_MAX // 2

    def _group(self, key: int) -> int:
        h = hash(key) % self._DUEL_MOD
        if h == 0:
            return self.LRU_LEADER
        if h == 1:
            return self.BIP_LEADER
        return self.FOLLOWER

    def _insert_position(self, req: Request) -> int:
        g = self._group(req.key)
        if g == self.LRU_LEADER:
            # A miss for an LRU-leader key is evidence against pure LRU.
            self.psel = min(self.psel + 1, self._PSEL_MAX)
            return MRU_POS
        if g == self.BIP_LEADER:
            self.psel = max(self.psel - 1, 0)
            return MRU_POS if self.rng.random() < self.epsilon else LRU_POS
        # Follower: PSEL above midpoint means BIP is losing fewer requests.
        if self.psel >= self._PSEL_MAX // 2:
            return MRU_POS if self.rng.random() < self.epsilon else LRU_POS
        return MRU_POS
