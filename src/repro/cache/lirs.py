"""LIRS — Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS'02).

Cited by the paper (§7) among the structure-adjusting victim-selection
policies.  LIRS ranks objects by *reuse distance* (inter-reference recency,
IRR) rather than recency: objects with small IRR are **LIR** (low
inter-reference) and protected; the rest are **HIR** (high) and live in a
small probationary region.  The structure:

* stack **S** — recency-ordered metadata of LIR objects, resident HIR
  objects and recently-seen non-resident HIR objects; an access that hits
  anywhere in S with HIR status and is re-referenced while still in S has,
  by construction, an IRR smaller than the LIR population's maximum
  recency → it is promoted to LIR;
* queue **Q** — FIFO of resident HIR objects, the eviction source;
* stack pruning keeps S's bottom a LIR object, demoting the bottom LIR to
  HIR when the LIR byte budget is exceeded.

Sizing follows the original: LIR region ≈ 99 % of capacity, HIR ≈ 1 %
(parameterised).  Adapted to variable object sizes by byte-budgeting both
regions.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cache.base import CachePolicy
from repro.cache.queue import LinkedQueue, Node
from repro.sim.request import Request

__all__ = ["LIRSCache"]

_LIR, _HIR_RES, _HIR_NONRES = 0, 1, 2


class LIRSCache(CachePolicy):
    """Size-aware LIRS.

    Parameters
    ----------
    hir_fraction:
        Byte share of the cache reserved for resident HIR objects (the
        probationary region; original default 1 %, we default 5 % which is
        friendlier to variable-size web objects).
    nonres_factor:
        Byte budget of non-resident HIR metadata tracked in S, as a
        multiple of the cache size (bounds S's growth).
    """

    name = "LIRS"

    def __init__(self, capacity: int, hir_fraction: float = 0.05, nonres_factor: float = 2.0):
        super().__init__(capacity)
        if not 0.0 < hir_fraction < 1.0:
            raise ValueError(f"hir_fraction must be in (0, 1), got {hir_fraction}")
        self.lir_cap = int(capacity * (1.0 - hir_fraction))
        self.stack = LinkedQueue()   # S: MRU at head; mixed statuses
        self.queue_q = LinkedQueue() # Q: resident HIR, FIFO
        # key -> (stack_node | None, q_node | None, status)
        self._state: Dict[int, Tuple] = {}
        self.lir_bytes = 0
        self._nonres_budget = int(capacity * nonres_factor)
        self._nonres_bytes = 0

    # -- helpers -----------------------------------------------------------------
    def _prune(self) -> None:
        """Pop non-LIR entries off S's bottom (stack pruning)."""
        while len(self.stack):
            bottom = self.stack.tail
            status = self._state.get(bottom.key, (None, None, None))[2]
            if status == _LIR:
                break
            self.stack.unlink(bottom)
            s_node, q_node, st = self._state[bottom.key]
            if st == _HIR_NONRES:
                del self._state[bottom.key]
                self._nonres_bytes -= bottom.size
            else:
                self._state[bottom.key] = (None, q_node, st)

    def _demote_bottom_lir(self) -> None:
        """Turn S's bottom LIR object into a resident HIR (queue tail of Q)."""
        bottom = self.stack.tail
        if bottom is None:
            return
        s_node, _, status = self._state[bottom.key]
        assert status == _LIR
        self.stack.unlink(bottom)
        self.lir_bytes -= bottom.size
        q_node = Node(bottom.key, bottom.size)
        self.queue_q.push_mru(q_node)
        self._state[bottom.key] = (None, q_node, _HIR_RES)
        self._prune()

    def _evict_from_q(self) -> None:
        victim = self.queue_q.pop_lru()
        s_node, _, _ = self._state[victim.key]
        self.used -= victim.size
        self.stats.evictions += 1
        if s_node is not None:
            # Keep non-resident metadata in S (bounded).
            self._state[victim.key] = (s_node, None, _HIR_NONRES)
            self._nonres_bytes += victim.size
            while self._nonres_bytes > self._nonres_budget:
                self._prune_oldest_nonres()
        else:
            del self._state[victim.key]

    def _prune_oldest_nonres(self) -> None:
        for node in self.stack.iter_lru():
            st = self._state.get(node.key, (None, None, None))[2]
            if st == _HIR_NONRES:
                self.stack.unlink(node)
                del self._state[node.key]
                self._nonres_bytes -= node.size
                return
        self._nonres_bytes = 0  # pragma: no cover - accounting safety net

    def _push_stack(self, key: int, size: int) -> Node:
        node = Node(key, size)
        self.stack.push_mru(node)
        return node

    # -- CachePolicy -----------------------------------------------------------------
    def _lookup(self, key: int) -> bool:
        st = self._state.get(key)
        return st is not None and st[2] in (_LIR, _HIR_RES)

    def _hit(self, req: Request) -> None:
        s_node, q_node, status = self._state[req.key]
        if status == _LIR:
            # Move to the top of S; prune if it was the bottom.
            self.stack.unlink(s_node)
            self.stack.push_mru(s_node)
            self._prune()
            return
        # Resident HIR hit.
        if s_node is not None:
            # IRR < max LIR recency → promote to LIR.
            self.stack.unlink(s_node)
            new_s = self._push_stack(req.key, q_node.size)
            self.queue_q.unlink(q_node)
            self._state[req.key] = (new_s, None, _LIR)
            self.lir_bytes += q_node.size
            while self.lir_bytes > self.lir_cap:
                self._demote_bottom_lir()
        else:
            # Not in S: stays HIR, refresh both structures.
            new_s = self._push_stack(req.key, q_node.size)
            self.queue_q.unlink(q_node)
            self.queue_q.push_mru(q_node)
            self._state[req.key] = (new_s, q_node, _HIR_RES)

    def _miss(self, req: Request) -> None:
        while self.used + req.size > self.capacity and (
            len(self.queue_q) or self.lir_bytes
        ):
            if len(self.queue_q):
                self._evict_from_q()
            else:
                self._demote_bottom_lir()
        # Look up the ghost state only *after* making room: the eviction
        # loop may prune this very key's non-resident entry off S's bottom.
        entry = self._state.get(req.key)
        if entry is not None and entry[2] == _HIR_NONRES:
            # Re-reference of a recently-seen object: IRR is small → LIR.
            s_node = entry[0]
            self._nonres_bytes -= s_node.size
            self.stack.unlink(s_node)
            new_s = self._push_stack(req.key, req.size)
            self._state[req.key] = (new_s, None, _LIR)
            self.lir_bytes += req.size
            self.used += req.size
            while self.lir_bytes > self.lir_cap:
                self._demote_bottom_lir()
        elif self.lir_bytes + req.size <= self.lir_cap:
            # Cold start: fill the LIR region first (original's warm-up).
            new_s = self._push_stack(req.key, req.size)
            self._state[req.key] = (new_s, None, _LIR)
            self.lir_bytes += req.size
            self.used += req.size
        else:
            # New object: resident HIR.
            new_s = self._push_stack(req.key, req.size)
            q_node = Node(req.key, req.size)
            self.queue_q.push_mru(q_node)
            self._state[req.key] = (new_s, q_node, _HIR_RES)
            self.used += req.size
        self._prune()

    def __len__(self) -> int:
        return sum(1 for st in self._state.values() if st[2] in (_LIR, _HIR_RES))

    def metadata_bytes(self) -> int:
        return 110 * len(self) + 32 * sum(
            1 for st in self._state.values() if st[2] == _HIR_NONRES
        )
