"""PIPP — Promotion/Insertion Pseudo-Partitioning (Xie & Loh, ISCA'09).

PIPP inserts at an intermediate queue position and, on a hit, promotes the
object **one step** toward MRU (with probability ``p_prom``) instead of
jumping to the head.  The paper singles this out (§1): single-step promotion
still strands P-ZROs in large CDN caches.

Positional insertion in a size-aware linked queue is implemented with a
*finger pointer* kept ``insert_frac`` of the way from the LRU end (in object
count).  The finger is recalibrated lazily every ``_RECAL`` operations by a
short walk, keeping amortised cost O(1); exact positioning is not required —
PIPP itself only needs "somewhere mid-queue".
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cache.base import QueueCache
from repro.cache.queue import Node
from repro.sim.request import Request

__all__ = ["PIPPCache"]


class PIPPCache(QueueCache):
    """Single-tenant PIPP.

    Parameters
    ----------
    insert_frac:
        Fractional insertion depth from the LRU end (0 = LRU, 1 = MRU).
        The multi-core original derives this from partition allocations; for
        one tenant the authors' single-partition default is mid-queue.
    p_prom:
        Probability that a hit promotes one position (original: 3/4).
    """

    name = "PIPP"

    _RECAL = 64  # operations between finger recalibrations

    def __init__(
        self,
        capacity: int,
        insert_frac: float = 0.5,
        p_prom: float = 0.75,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(capacity)
        if not 0.0 <= insert_frac <= 1.0:
            raise ValueError(f"insert_frac must be in [0, 1], got {insert_frac}")
        self.insert_frac = insert_frac
        self.p_prom = p_prom
        self.rng = rng or random.Random(0)
        self._finger: Optional[Node] = None
        self._ops = 0

    # -- finger maintenance ---------------------------------------------------
    def _recalibrate(self) -> None:
        """Walk from the LRU end to the target depth; O(frac·n) but amortised
        over ``_RECAL`` constant-time operations."""
        target = int(len(self.queue) * self.insert_frac)
        node = self.queue.tail
        for _ in range(target):
            if node is None or node.prev is None or node.prev.key is None:
                break
            node = node.prev
        self._finger = node

    def _finger_node(self) -> Optional[Node]:
        self._ops += 1
        if self._finger is None or self._ops % self._RECAL == 0:
            self._recalibrate()
        # The finger may have been unlinked (evicted / promoted) since the
        # last recalibration; detect via cleared links.
        f = self._finger
        if f is not None and f.next is None and f.prev is None:
            self._recalibrate()
            f = self._finger
        return f

    # -- hooks ----------------------------------------------------------------
    def _miss(self, req: Request) -> None:
        self._make_room(req.size)
        node = Node(req.key, req.size)
        node.inserted_mru = False  # mid-queue counts as non-MRU
        anchor = self._finger_node()
        if anchor is None or len(self.queue) == 0 or self.insert_frac == 0.0:
            # frac 0 means the exact LRU position, not one above the tail.
            self.queue.push_lru(node)
        else:
            self.queue.insert_before(node, anchor)
        self.index[req.key] = node
        self.used += req.size
        self._on_insert(node, req)

    def _on_hit(self, node: Node, req: Request) -> None:
        if self.rng.random() < self.p_prom:
            self.queue.promote_one(node)
