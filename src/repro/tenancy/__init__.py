"""``repro.tenancy`` — multi-tenant capacity partitioning with SLOs.

One cluster's capacity, K tenants' traffic.  The subsystem answers
"whose bytes?" the way :mod:`repro.orchestrate` answers "which policy?":

* :class:`~repro.tenancy.partition.TenantPartitionedCache` enforces
  per-tenant byte quotas inside one policy slot (hard partitioning: a
  tenant under quota never loses bytes to a neighbour);
* :class:`~repro.tenancy.mrc.TenantMRCEstimator` runs a per-tenant
  SHARDS-sampled shadow grid producing a *live* miss-ratio curve;
* :class:`~repro.tenancy.allocator.CapacityAllocator` waterfills the
  capacity split over the MRC marginal-gain curves, behind the same
  hysteresis/cooldown gate the policy orchestrator uses;
* :class:`~repro.tenancy.controller.TenancyController` glues them to a
  live cache, tracks per-tenant miss-ratio SLOs through
  :class:`repro.obs.span.SLOTracker`, and forces a re-allocation when a
  tenant's error-budget burn rate crosses the trigger;
* :func:`~repro.tenancy.bench.run_tenancy_bench` compares the online
  allocation against static partitioning under a flash-crowd mix
  (``repro bench tenancy`` → ``BENCH_tenancy.json``).

See ``docs/tenancy_design.md`` for the design rationale.
"""

from repro.tenancy.allocator import CapacityAllocator
from repro.tenancy.bench import (
    TENANCY_BENCH_SCHEMA,
    config_from_doc,
    format_tenancy_doc,
    run_tenancy_bench,
)
from repro.tenancy.controller import ReallocEvent, TenancyController
from repro.tenancy.mrc import TenantMRCEstimator
from repro.tenancy.partition import TenantPartitionedCache

__all__ = [
    "TenantPartitionedCache",
    "TenantMRCEstimator",
    "CapacityAllocator",
    "TenancyController",
    "ReallocEvent",
    "TENANCY_BENCH_SCHEMA",
    "run_tenancy_bench",
    "config_from_doc",
    "format_tenancy_doc",
]
