"""The tenancy control loop: live MRCs in, quota re-allocations out.

:class:`TenancyController` is the tenancy analogue of
:class:`repro.orchestrate.controller.Orchestrator`: feed every live
request through :meth:`record` (after the cache served it) and it

* routes the request to its tenant's :class:`~repro.tenancy.mrc.
  TenantMRCEstimator` (the SHARDS-sampled shadow grid),
* tracks each tenant's request-rate share and windowed miss ratio,
* accounts each tenant's **miss-ratio SLO** through the existing
  :class:`repro.obs.span.SLOTracker` error-budget machinery — a miss *is*
  the breach, so a tenant's burn rate is ``miss_ratio / mr_slo``: above
  1.0 the tenant is missing more than its objective tolerates,
* every ``eval_every`` requests asks the :class:`~repro.tenancy.
  allocator.CapacityAllocator` whether the split should move.  A tenant
  whose burn rate crosses ``burn_threshold`` emits ``slo_breach`` and
  *forces* the evaluation past the allocator's improvement margins
  (cooldown still holds — SLO pressure must not flap the split either).

Accepted re-allocations go through the ``apply`` callback — typically
:meth:`repro.tenancy.partition.TenantPartitionedCache.set_quotas`, which
returns the per-tenant bytes its quota shrinks evicted — and are logged
as :class:`ReallocEvent` rows plus a ``tenant_realloc`` probe event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Union

from repro.obs.span import SLO, SLOTracker
from repro.orchestrate.controller import ControllerConfig
from repro.orchestrate.shadow import DecayedRatio
from repro.sim.request import Request
from repro.tenancy.allocator import CapacityAllocator
from repro.tenancy.mrc import TenantMRCEstimator
from repro.traces.drift import TENANT_STRIDE

__all__ = ["ReallocEvent", "TenancyController"]


@dataclass
class ReallocEvent:
    """One applied re-allocation, for the bench doc and the event stream."""

    at: int  # live request index of the decision
    trigger: str  # "gain" (margin win) or "burn" (SLO-forced)
    alloc: Dict[int, int]
    evicted: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "at": self.at,
            "trigger": self.trigger,
            "alloc": {str(t): b for t, b in self.alloc.items()},
            "evicted": {str(t): b for t, b in self.evicted.items()},
        }


class TenancyController:
    """Online quota control for one multi-tenant cache.

    Parameters
    ----------
    capacity:
        Total byte budget being split.
    n_tenants:
        Number of tenants (ids ``0 .. n_tenants-1``).
    apply:
        ``quotas -> evicted`` callback enforcing an accepted split (e.g.
        ``TenantPartitionedCache.set_quotas``).  ``None`` makes the
        controller a pure observer — decisions are logged, nothing moves.
    initial:
        The split currently enforced (default: equal).
    mr_slo:
        Per-tenant miss-ratio objective in (0, 1): scalar for all, or a
        ``{tenant: slo}`` mapping.  Burn rate = miss_ratio / mr_slo.
    burn_threshold:
        Burn rate at which a tenant's SLO pressure forces re-allocation.
    rate, seed, window, grid_fractions:
        Estimator parameters (see :class:`TenantMRCEstimator`).
    objective, quantum, min_share:
        Allocator parameters (see :class:`CapacityAllocator`).
    config:
        Gate knobs + ``eval_every`` cadence
        (:class:`~repro.orchestrate.controller.ControllerConfig`).
    probe:
        Optional obs probe (``tenant_realloc`` / ``slo_breach``).
    """

    def __init__(
        self,
        capacity: int,
        n_tenants: int,
        apply: Optional[Callable[[Dict[int, int]], Optional[Dict[int, int]]]] = None,
        initial: Optional[Mapping[int, int]] = None,
        mr_slo: Union[float, Mapping[int, float]] = 0.5,
        burn_threshold: float = 1.5,
        rate: float = 0.1,
        seed: int = 0,
        window: int = 2_000,
        grid_fractions=None,
        objective: str = "fairness",
        quantum: Optional[int] = None,
        min_share: float = 0.05,
        config: Optional[ControllerConfig] = None,
        probe=None,
    ):
        if n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {n_tenants}")
        if burn_threshold <= 0:
            raise ValueError(f"burn_threshold must be > 0, got {burn_threshold}")
        self.capacity = int(capacity)
        self.n_tenants = int(n_tenants)
        self.apply = apply
        self.probe = probe
        mrc_kwargs = dict(rate=rate, seed=seed, window=window)
        if grid_fractions is not None:
            mrc_kwargs["grid_fractions"] = grid_fractions
        self.estimators: Dict[int, TenantMRCEstimator] = {
            t: TenantMRCEstimator(t, self.capacity, **mrc_kwargs)
            for t in range(n_tenants)
        }
        self.allocator = CapacityAllocator(
            self.capacity,
            n_tenants,
            quantum=quantum,
            min_share=min_share,
            objective=objective,
            config=config,
        )
        self.config = self.allocator.config
        if initial is None:
            initial = {t: self.capacity // n_tenants for t in range(n_tenants)}
        self.alloc: Dict[int, int] = {t: int(initial[t]) for t in range(n_tenants)}
        # Per-tenant miss-ratio SLOs ride the span SLO machinery: one
        # synthetic stage per tenant, observed at zero latency with
        # ok=hit, so "breach" means "miss" and the budget is mr_slo.
        if isinstance(mr_slo, Mapping):
            slos = {t: float(mr_slo.get(t, 0.5)) for t in range(n_tenants)}
        else:
            slos = {t: float(mr_slo) for t in range(n_tenants)}
        for t, s in slos.items():
            if not 0.0 < s < 1.0:
                raise ValueError(f"mr_slo for tenant {t} must be in (0, 1), got {s}")
        self.mr_slo = slos
        self.burn_threshold = float(burn_threshold)
        self.slo = SLOTracker(
            [SLO(self._stage(t), latency_us=1.0, target=1.0 - slos[t]) for t in slos]
        )
        self.rates: Dict[int, DecayedRatio] = {
            t: DecayedRatio(window) for t in range(n_tenants)
        }
        self.windowed_mr: Dict[int, DecayedRatio] = {
            t: DecayedRatio(window) for t in range(n_tenants)
        }
        self.tenant_requests: Dict[int, int] = {t: 0 for t in range(n_tenants)}
        self.tenant_hits: Dict[int, int] = {t: 0 for t in range(n_tenants)}
        self.reallocations: List[ReallocEvent] = []
        self.breaches: List[dict] = []
        self.t = 0

    @staticmethod
    def _stage(tenant: int) -> str:
        return f"tenant{tenant}_mr"

    def tenant_of(self, key) -> int:
        """Same key-namespace routing as the partition (sentinels → 0)."""
        if isinstance(key, int):
            t = key // TENANT_STRIDE
            if 0 <= t < self.n_tenants:
                return t
        return 0

    # -- the per-request hook ------------------------------------------------
    def record(self, req: Request, hit: bool) -> Optional[ReallocEvent]:
        """Account one live request; returns the re-allocation applied, if
        any."""
        self.t += 1
        tenant = self.tenant_of(req.key)
        self.tenant_requests[tenant] += 1
        if hit:
            self.tenant_hits[tenant] += 1
        self.windowed_mr[tenant].update(0.0 if hit else 1.0)
        for t, share in self.rates.items():
            share.update(1.0 if t == tenant else 0.0)
        self.slo.observe(self._stage(tenant), 0.0, ok=hit)
        self.estimators[tenant].observe(req)
        if self.t % self.config.eval_every == 0:
            return self._evaluate()
        return None

    # -- evaluation ----------------------------------------------------------
    def _burn_rates(self) -> Dict[int, float]:
        summary = self.slo.summary()
        return {
            t: summary[self._stage(t)]["burn_rate"] for t in range(self.n_tenants)
        }

    def _evaluate(self) -> Optional[ReallocEvent]:
        burns = self._burn_rates()
        burning = [
            t for t, burn in burns.items()
            if burn > self.burn_threshold and self.tenant_requests[t] > 0
        ]
        for t in burning:
            breach = {
                "at": self.t,
                "tenant": t,
                "burn": round(burns[t], 4),
                "mr": round(self.windowed_mr[t].value, 6),
                "slo": self.mr_slo[t],
            }
            self.breaches.append(breach)
            if self.probe is not None:
                self.probe.emit("slo_breach", **breach)
        sampled = sum(e.sampled_requests for e in self.estimators.values())
        rates = {t: share.value for t, share in self.rates.items()}
        proposal = self.allocator.consider(
            self.t,
            sampled,
            self.estimators,
            rates,
            self.alloc,
            force=bool(burning),
        )
        if proposal is None:
            return None
        evicted = self.apply(dict(proposal)) if self.apply is not None else None
        event = ReallocEvent(
            at=self.t,
            trigger="burn" if burning else "gain",
            alloc=dict(proposal),
            evicted=dict(evicted) if isinstance(evicted, dict) else {},
        )
        self.alloc = dict(proposal)
        self.reallocations.append(event)
        if self.probe is not None:
            self.probe.emit(
                "tenant_realloc",
                at=event.at,
                trigger=event.trigger,
                alloc={str(t): b for t, b in event.alloc.items()},
                freed_bytes=sum(event.evicted.values()),
            )
        return event

    # -- introspection -------------------------------------------------------
    def accounting_errors(self) -> int:
        """Cross-check the SLO ledgers against the controller's own
        per-tenant request counts; any divergence is a bug (CI pins 0)."""
        summary = self.slo.summary()
        errors = 0
        for t in range(self.n_tenants):
            row = summary[self._stage(t)]
            if row["total"] != self.tenant_requests[t]:
                errors += 1
            misses = self.tenant_requests[t] - self.tenant_hits[t]
            if row["breaches"] != misses:
                errors += 1
        return errors

    def summary(self) -> dict:
        tenants = {}
        for t in range(self.n_tenants):
            n = self.tenant_requests[t]
            hits = self.tenant_hits[t]
            tenants[str(t)] = {
                "requests": n,
                "hits": hits,
                "miss_ratio": (n - hits) / n if n else 0.0,
                "windowed_mr": round(self.windowed_mr[t].value, 6),
                "rate_share": round(self.rates[t].value, 6),
                "mr_slo": self.mr_slo[t],
                "alloc_bytes": self.alloc[t],
                "mrc": self.estimators[t].snapshot(),
            }
        return {
            "requests": self.t,
            "alloc": {str(t): b for t, b in self.alloc.items()},
            "objective": self.allocator.objective,
            "reallocations": [e.as_dict() for e in self.reallocations],
            "slo_breaches": list(self.breaches),
            "slo": self.slo.summary(),
            "accounting_errors": self.accounting_errors(),
            "evaluations": self.allocator.evaluations,
            "tenants": tenants,
        }
