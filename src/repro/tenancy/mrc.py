"""Live per-tenant miss-ratio curves from SHARDS-sampled shadow grids.

The offline Mattson sweep (:mod:`repro.traces.mrc`) needs the whole trace;
the allocator needs to know *now* what one more megabyte is worth to each
tenant.  :class:`TenantMRCEstimator` answers online, the SHARDS way
(:mod:`repro.orchestrate.sampler`): a per-tenant
:class:`~repro.orchestrate.sampler.SpatialSampler` keeps rate ``R`` of the
tenant's keys, and a small grid of shadow caches — one per capacity grid
point, each scaled to ``R ×`` its point — replays the sampled sub-stream.
Each shadow's :class:`~repro.orchestrate.shadow.DecayedRatio` windowed
miss ratio is one point of the tenant's live MRC; between points the curve
is interpolated linearly, anchored at ``(0, 1.0)`` (no bytes, no hits).

Windowed, not cumulative, for the same reason the switch controller
scores windows: under drift the question is what capacity is worth to
this tenant *now* — a flash tenant's curve must steepen when the storm
starts, not after the cumulative average catches up.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.cache.base import CachePolicy
from repro.orchestrate.sampler import SpatialSampler
from repro.orchestrate.shadow import DecayedRatio
from repro.sim.request import Request

__all__ = ["DEFAULT_GRID_FRACTIONS", "TenantMRCEstimator"]

#: Capacity grid points as fractions of the *total* (cluster) capacity:
#: any single tenant could be allocated nearly everything, so each
#: tenant's curve must span the full range the allocator explores.
DEFAULT_GRID_FRACTIONS: Tuple[float, ...] = (0.1, 0.2, 0.35, 0.55, 0.8, 1.0)


def _default_shadow(capacity: int) -> CachePolicy:
    from repro.cache.lru import LRUCache

    return LRUCache(capacity)


class TenantMRCEstimator:
    """One tenant's live MRC: a SHARDS sampler feeding a shadow-cache grid.

    Parameters
    ----------
    tenant:
        Tenant id (decorrelates the sampler so no two tenants study the
        same biased key subset).
    capacity:
        Total capacity whose fractions form the grid.
    rate, seed:
        SHARDS sample rate and base seed.
    window:
        Decay window for the per-point miss ratios, in sampled requests.
    grid_fractions:
        Capacity grid as fractions of ``capacity`` (strictly increasing).
    shadow_factory:
        Policy per grid point (default LRU — the MRC convention; the
        allocator wants the capacity signal, not policy rankings).
    """

    def __init__(
        self,
        tenant: int,
        capacity: int,
        rate: float = 0.1,
        seed: int = 0,
        window: int = 2_000,
        grid_fractions: Sequence[float] = DEFAULT_GRID_FRACTIONS,
        shadow_factory: Optional[Callable[[int], CachePolicy]] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        fracs = tuple(grid_fractions)
        if not fracs or any(
            not 0.0 < f <= 1.0 for f in fracs
        ) or list(fracs) != sorted(set(fracs)):
            raise ValueError(
                f"grid_fractions must be strictly increasing in (0, 1], got {fracs!r}"
            )
        self.tenant = int(tenant)
        self.capacity = int(capacity)
        self.sampler = SpatialSampler(rate, seed=seed * 31 + tenant * 0x9E3779B9)
        factory = shadow_factory if shadow_factory is not None else _default_shadow
        self.grid: List[int] = [max(int(capacity * f), 1) for f in fracs]
        self.shadows: List[CachePolicy] = [
            factory(self.sampler.scaled_capacity(point)) for point in self.grid
        ]
        self.ratios: List[DecayedRatio] = [DecayedRatio(window) for _ in self.grid]
        self.sampled_requests = 0
        self.requests = 0

    def observe(self, req: Request) -> bool:
        """Offer one of this tenant's live requests; replays it into every
        grid shadow iff the key is in the sampled population."""
        self.requests += 1
        if not self.sampler.sampled(req.key):
            return False
        self.sampled_requests += 1
        for policy, ratio in zip(self.shadows, self.ratios):
            hit = policy.request(req)
            ratio.update(0.0 if hit else 1.0)
        return True

    def curve(self) -> List[Tuple[int, float]]:
        """The live MRC as ``[(capacity_bytes, windowed_miss_ratio), ...]``,
        anchored at ``(0, 1.0)`` and monotonically *clamped* — sampling
        noise can locally invert two grid points, and a non-increasing
        curve is what the waterfilling marginal gains need."""
        points: List[Tuple[int, float]] = [(0, 1.0)]
        floor = 1.0
        for cap, ratio in zip(self.grid, self.ratios):
            floor = min(floor, ratio.value)
            points.append((cap, floor))
        return points

    def miss_ratio_at(self, capacity: int) -> float:
        """Piecewise-linear interpolation of the live curve (clamped to the
        grid's ends)."""
        points = self.curve()
        if capacity <= 0:
            return points[0][1]
        for (c0, m0), (c1, m1) in zip(points, points[1:]):
            if capacity <= c1:
                if c1 == c0:
                    return m1
                w = (capacity - c0) / (c1 - c0)
                return m0 + (m1 - m0) * w
        return points[-1][1]

    def snapshot(self) -> dict:
        return {
            "tenant": self.tenant,
            "rate": self.sampler.rate,
            "requests": self.requests,
            "sampled_requests": self.sampled_requests,
            "curve": [[c, round(m, 6)] for c, m in self.curve()],
        }
