"""``repro bench tenancy`` — online capacity allocation vs static split.

One run, two measurements on the same spliced multi-tenant trace
(:func:`repro.traces.drift.multi_tenant_trace` — K families, one of them
a flash crowd):

1. **static** — a :class:`~repro.tenancy.partition.TenantPartitionedCache`
   frozen at the equal split: each tenant keeps ``capacity / K`` forever,
   however its demand moves;
2. **online** — the same partition driven by a
   :class:`~repro.tenancy.controller.TenancyController`: live per-tenant
   MRCs feed the waterfilling allocator, SLO burn rates force relief, and
   accepted splits are enforced through ``set_quotas``.

The **comparison** block is the acceptance contract: at equal total
capacity the online allocation should cut the *worst tenant's* miss ratio
by ≥5 % relative to static (fairness) without losing overall hit ratio
(utilization).  The resulting ``BENCH_tenancy.json`` (schema
:data:`TENANCY_BENCH_SCHEMA`) embeds a run manifest whose ``extra``
block carries the complete configuration, so ``config_from_doc``
round-trips a reproducing keyword set from the artifact alone.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

from repro.obs.manifest import build_manifest
from repro.orchestrate.controller import ControllerConfig
from repro.tenancy.controller import TenancyController
from repro.tenancy.partition import TenantPartitionedCache
from repro.traces.drift import multi_tenant_trace

__all__ = [
    "TENANCY_BENCH_SCHEMA",
    "DEFAULT_TENANTS",
    "run_tenancy_bench",
    "config_from_doc",
    "format_tenancy_doc",
    "write_tenancy_doc",
]

#: Version of the ``BENCH_tenancy.json`` layout; bump on breaking changes.
TENANCY_BENCH_SCHEMA = 1

#: Default tenant mix: a stable-churn tenant, a flash-crowd tenant whose
#: demand spikes mid-trace, and a diurnal tenant rotating its hot set —
#: the shape that makes a static split provably wrong somewhere.
DEFAULT_TENANTS = ("churn", "flash", "diurnal")


def _replay_partition(
    partition: TenantPartitionedCache,
    trace,
    controller: Optional[TenancyController] = None,
) -> Dict[str, dict]:
    """Replay ``trace`` through ``partition`` (optionally under a
    controller), returning per-tenant and overall hit accounting."""
    request = partition.request
    record = controller.record if controller is not None else None
    for req in trace:
        hit = request(req)
        if record is not None:
            record(req, hit)
    per_tenant = {}
    for t, row in partition.tenant_stats().items():
        per_tenant[str(t)] = {
            "requests": row["requests"],
            "miss_ratio": row["miss_ratio"],
            "byte_miss_ratio": row["byte_miss_ratio"],
            "evictions": row["evictions"],
            "quota_bytes": row["quota_bytes"],
            "used_bytes": row["used_bytes"],
        }
    stats = partition.stats
    return {
        "overall": {
            "requests": stats.hits + stats.misses,
            "miss_ratio": stats.miss_ratio,
            "byte_miss_ratio": stats.byte_miss_ratio,
            "evictions": stats.evictions,
            "quota_evictions": partition.quota_evictions,
            "quota_evicted_bytes": partition.quota_evicted_bytes,
        },
        "tenants": per_tenant,
    }


def run_tenancy_bench(
    tenants: Sequence[str] = DEFAULT_TENANTS,
    n_requests: int = 120_000,
    fraction: float = 0.05,
    mr_slo: float = 0.5,
    burn_threshold: float = 1.5,
    objective: str = "fairness",
    sample_rate: float = 0.2,
    window: int = 400,
    hysteresis: float = 0.02,
    min_gap: float = 0.002,
    cooldown: int = 8_000,
    min_samples: int = 200,
    eval_every: int = 500,
    min_share: float = 0.05,
    seed: int = 0,
    output: Optional[str] = "BENCH_tenancy.json",
    quick: bool = False,
) -> dict:
    """Run the tenancy bench; returns (and optionally persists) the doc."""
    if quick:
        # CI smoke shape: short trace, same three-family mix — the flash
        # crowd still lands mid-trace, so a re-allocation provably fires.
        n_requests = min(n_requests, 45_000)
    tenants = tuple(tenants)
    tr = multi_tenant_trace(n_requests=n_requests, seed=seed, tenants=tenants)
    k = len(tenants)
    capacity = max(int(tr.working_set_size * fraction), k)

    static_part = TenantPartitionedCache(capacity, n_tenants=k)
    static = _replay_partition(static_part, tr.requests)

    online_part = TenantPartitionedCache(capacity, n_tenants=k)
    config = ControllerConfig(
        hysteresis=hysteresis,
        min_gap=min_gap,
        cooldown=cooldown,
        min_samples=min_samples,
        eval_every=eval_every,
    )
    controller = TenancyController(
        capacity,
        k,
        apply=online_part.set_quotas,
        initial=online_part.quotas(),
        mr_slo=mr_slo,
        burn_threshold=burn_threshold,
        rate=sample_rate,
        seed=seed,
        window=window,
        objective=objective,
        min_share=min_share,
        config=config,
    )
    online = _replay_partition(online_part, tr.requests, controller=controller)
    online["controller"] = controller.summary()

    def worst_mr(run: dict) -> float:
        rows = [r for r in run["tenants"].values() if r["requests"]]
        return max(r["miss_ratio"] for r in rows) if rows else 0.0

    static_worst = worst_mr(static)
    online_worst = worst_mr(online)
    comparison = {
        "objective": objective,
        "capacity_bytes": capacity,
        "static_worst_tenant_mr": static_worst,
        "online_worst_tenant_mr": online_worst,
        # The acceptance metric: relative improvement of the worst-off
        # tenant at equal total capacity (>= 0.05 required).
        "worst_tenant_improvement": (
            (static_worst - online_worst) / static_worst if static_worst else 0.0
        ),
        "static_overall_mr": static["overall"]["miss_ratio"],
        "online_overall_mr": online["overall"]["miss_ratio"],
        "n_reallocations": len(controller.reallocations),
        "n_slo_breaches": len(controller.breaches),
        "accounting_errors": controller.accounting_errors(),
    }

    ten_config = {
        "tenants": list(tenants),
        "n_requests": n_requests,
        "cache_fraction": fraction,
        "capacity_bytes": capacity,
        "mr_slo": mr_slo,
        "burn_threshold": burn_threshold,
        "objective": objective,
        "sample_rate": sample_rate,
        "window": window,
        "hysteresis": hysteresis,
        "min_gap": min_gap,
        "cooldown": cooldown,
        "min_samples": min_samples,
        "eval_every": eval_every,
        "min_share": min_share,
        "seed": seed,
    }
    manifest = build_manifest(trace=tr, seed=seed, extra={"tenancy": ten_config})
    doc = {
        "schema": TENANCY_BENCH_SCHEMA,
        "config": ten_config,
        "static": static,
        "online": online,
        "comparison": comparison,
        "manifest": manifest,
    }
    if output:
        write_tenancy_doc(doc, output)
    return doc


def config_from_doc(doc: dict) -> dict:
    """Rebuild ``run_tenancy_bench`` keywords from a persisted doc.

    The reproducibility contract mirrors the orchestrate bench: the
    manifest's ``extra.tenancy`` block carries every knob; capacity is
    derived (trace × fraction) and therefore dropped.
    """
    cfg = dict(doc["manifest"]["extra"]["tenancy"])
    cfg.pop("capacity_bytes", None)
    cfg["fraction"] = cfg.pop("cache_fraction")
    return cfg


def write_tenancy_doc(doc: dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return str(path)


def format_tenancy_doc(doc: dict) -> str:
    """Human-readable summary of one tenancy-bench document."""
    cfg = doc["config"]
    cmp_ = doc["comparison"]
    lines = [
        (
            f"tenancy bench — {len(cfg['tenants'])} tenants "
            f"({', '.join(cfg['tenants'])}) × "
            f"{doc['static']['overall']['requests']:,} requests, "
            f"cache {cfg['capacity_bytes'] / 1e6:.0f} MB, "
            f"objective {cfg['objective']}, seed {cfg['seed']}"
        ),
        "per-tenant miss ratio (static -> online):",
    ]
    for t in sorted(doc["static"]["tenants"]):
        s = doc["static"]["tenants"][t]["miss_ratio"]
        o = doc["online"]["tenants"][t]["miss_ratio"]
        q = doc["online"]["tenants"][t]["quota_bytes"]
        lines.append(
            f"  tenant {t} ({cfg['tenants'][int(t)]:8s}) "
            f"{s:.4f} -> {o:.4f}  (final quota {q / 1e6:.1f} MB)"
        )
    lines += [
        (
            f"worst tenant mr {cmp_['static_worst_tenant_mr']:.4f} -> "
            f"{cmp_['online_worst_tenant_mr']:.4f} "
            f"({cmp_['worst_tenant_improvement'] * 100:+.1f}% improvement)"
        ),
        (
            f"overall mr {cmp_['static_overall_mr']:.4f} -> "
            f"{cmp_['online_overall_mr']:.4f}; "
            f"{cmp_['n_reallocations']} realloc(s), "
            f"{cmp_['n_slo_breaches']} SLO breach event(s), "
            f"{cmp_['accounting_errors']} accounting error(s)"
        ),
    ]
    return "\n".join(lines)
