"""Hard per-tenant capacity partitioning inside one policy slot.

:class:`TenantPartitionedCache` is a composite :class:`~repro.cache.base.
CachePolicy`: one inner policy instance per tenant, each sized to that
tenant's byte quota.  Requests route to their tenant's inner cache, so the
two quota invariants the tests pin hold **by construction**:

* *isolation* — admission to a full tenant evicts only that tenant's own
  bytes; a tenant under quota never loses residents to a neighbour;
* *scoped victim selection* — shrinking a quota (:meth:`set_quotas`)
  evicts from the over-quota tenant alone, via its inner policy's own
  victim-selection hook (LRU end for queue policies).

Routing is **by key namespace**: the multi-tenant traces place tenant
``t``'s keys in ``[t · TENANT_STRIDE, (t+1) · TENANT_STRIDE)``, so
``key // TENANT_STRIDE`` recovers the owner on every path — live
requests, replication fills, warm-handoff imports — including the ones
that only carry ``(key, size)`` pairs and would lose a request-attached
tag.  ``req.tenant`` is carried for observability; the key decides.

The composite plays the whole duck-typed policy protocol: ``request``,
``contains``, ``remove``, ``export_residents`` / ``import_resident``
(live swap + warm handoff migrate every tenant's residents), and
aggregates ``stats`` / ``used`` across inners, so it drops into a
:class:`~repro.serve.shard.CacheShard` or :class:`~repro.tdc.node.
StorageNode` like any single-tenant policy.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cache.base import CachePolicy, CacheStats
from repro.sim.request import Request
from repro.traces.drift import TENANT_STRIDE

__all__ = ["TenantPartitionedCache"]


def _default_inner(capacity: int) -> CachePolicy:
    from repro.cache.lru import LRUCache

    return LRUCache(capacity)


class TenantPartitionedCache(CachePolicy):
    """One cache slot, K tenant partitions, per-tenant byte quotas.

    Parameters
    ----------
    capacity:
        Total byte budget across all tenants.  Quotas must fit inside it.
    n_tenants:
        Number of tenants (ids ``0 .. n_tenants-1``).
    inner_factory:
        ``quota_bytes -> CachePolicy`` building each tenant's partition
        (default LRU).  Inner policies should support ``_make_room`` for
        quota-shrink eviction — every queue-structured registry policy
        does.
    quotas:
        Optional initial ``{tenant: bytes}`` split (default: equal).
    """

    name = "TenantPartitioned"

    def __init__(
        self,
        capacity: int,
        n_tenants: int = 2,
        inner_factory: Optional[Callable[[int], CachePolicy]] = None,
        quotas: Optional[Dict[int, int]] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {n_tenants}")
        if capacity < n_tenants:
            raise ValueError(
                f"capacity {capacity} cannot be split over {n_tenants} tenants"
            )
        # Deliberately not calling CachePolicy.__init__: the composite's
        # ``used`` is a property over the inners, not a plain attribute.
        self.capacity = int(capacity)
        self.clock = 0
        self.n_tenants = int(n_tenants)
        factory = inner_factory if inner_factory is not None else _default_inner
        self._factory = factory
        if quotas is None:
            quotas = {t: self.capacity // n_tenants for t in range(n_tenants)}
        self._validate_quotas(quotas)
        self.inners: Dict[int, CachePolicy] = {
            t: factory(max(int(quotas[t]), 1)) for t in range(n_tenants)
        }
        self.quota_evictions = 0
        self.quota_evicted_bytes = 0

    # -- routing ------------------------------------------------------------
    def tenant_of(self, key) -> int:
        """Owning tenant of ``key`` (0 for keys outside any tenant's
        namespace — sentinel/probe keys land in tenant 0's partition)."""
        if isinstance(key, int):
            t = key // TENANT_STRIDE
            if 0 <= t < self.n_tenants:
                return t
        return 0

    def _validate_quotas(self, quotas: Dict[int, int]) -> None:
        unknown = set(quotas) - set(range(self.n_tenants))
        if unknown:
            raise ValueError(f"unknown tenants in quotas: {sorted(unknown)}")
        if len(quotas) != self.n_tenants:
            missing = set(range(self.n_tenants)) - set(quotas)
            raise ValueError(f"quotas missing tenants: {sorted(missing)}")
        total = sum(max(int(q), 1) for q in quotas.values())
        if total > self.capacity:
            raise ValueError(
                f"quotas sum to {total} > capacity {self.capacity}"
            )

    # -- CachePolicy surface -------------------------------------------------
    def request(self, req: Request) -> bool:
        """Route one request to its tenant's partition."""
        self.clock += 1
        return self.inners[self.tenant_of(req.key)].request(req)

    def replay(self, requests, out: Optional[list] = None) -> None:
        request = self.request
        if out is None:
            for req in requests:
                request(req)
        else:
            append = out.append
            for req in requests:
                append(request(req))

    def _lookup(self, key) -> bool:
        return self.inners[self.tenant_of(key)]._lookup(key)

    def _hit(self, req: Request) -> None:  # pragma: no cover - request() routes
        self.inners[self.tenant_of(req.key)]._hit(req)

    def _miss(self, req: Request) -> None:
        """Admit into the owner's partition (the replication-fill path).

        Guards the per-tenant size check the inner's ``request`` template
        would normally apply: an object larger than its tenant's quota is
        skipped, never force-fitted by draining the partition.
        """
        inner = self.inners[self.tenant_of(req.key)]
        if req.size <= inner.capacity:
            inner._miss(req)

    def contains(self, key) -> bool:
        return self.inners[self.tenant_of(key)].contains(key)

    def remove(self, key):
        remove = getattr(self.inners[self.tenant_of(key)], "remove", None)
        return remove(key) if remove is not None else None

    # -- resident-set portability --------------------------------------------
    def export_residents(self):
        for inner in self.inners.values():
            yield from inner.export_residents()

    def import_resident(self, key, size: int) -> bool:
        inner = self.inners[self.tenant_of(key)]
        return inner.import_resident(key, size)

    # -- quotas ----------------------------------------------------------------
    def quotas(self) -> Dict[int, int]:
        """Current ``{tenant: quota_bytes}`` split."""
        return {t: inner.capacity for t, inner in self.inners.items()}

    def set_quotas(self, quotas: Dict[int, int]) -> Dict[int, int]:
        """Re-split capacity across tenants; returns bytes evicted per tenant.

        Shrinks evict immediately — from the shrunk tenant **only**, via
        its inner policy's own victim selection — so the new split is
        enforced the moment the call returns, not lazily on the next
        admission.  Grows take effect immediately too (the freed bytes
        were already reclaimed by the shrink side).  Emits one
        ``quota_evict`` probe event per tenant that lost residents.
        """
        self._validate_quotas(quotas)
        evicted: Dict[int, int] = {}
        # Shrinks first, then grows: transiently the split only tightens,
        # so the sum of quotas never exceeds capacity mid-update.
        for grow_pass in (False, True):
            for t, quota in quotas.items():
                quota = max(int(quota), 1)
                inner = self.inners[t]
                if (quota > inner.capacity) != grow_pass:
                    continue
                used_before = inner.used
                evs_before = inner.stats.evictions
                inner.capacity = quota
                if inner.used > quota:
                    make_room = getattr(inner, "_make_room", None)
                    if make_room is not None:
                        make_room(0)
                freed = used_before - inner.used
                if freed > 0:
                    count = inner.stats.evictions - evs_before
                    self.quota_evictions += count
                    self.quota_evicted_bytes += freed
                    evicted[t] = freed
                    if self._probe is not None:
                        self._probe.emit(
                            "quota_evict",
                            tenant=t,
                            quota=quota,
                            evicted=count,
                            freed_bytes=freed,
                            t=self.clock,
                        )
        return evicted

    # -- aggregation -------------------------------------------------------------
    @property
    def used(self) -> int:
        return sum(inner.used for inner in self.inners.values())

    @used.setter
    def used(self, value) -> None:  # pragma: no cover - defensive
        raise AttributeError("composite 'used' is derived from the partitions")

    @property
    def stats(self) -> CacheStats:
        """Aggregate counters across tenants (a fresh snapshot per access)."""
        agg = CacheStats()
        for inner in self.inners.values():
            st = inner.stats
            agg.hits += st.hits
            agg.misses += st.misses
            agg.bytes_hit += st.bytes_hit
            agg.bytes_missed += st.bytes_missed
            agg.evictions += st.evictions
            agg.bypasses += st.bypasses
        return agg

    @stats.setter
    def stats(self, value) -> None:  # pragma: no cover - defensive
        raise AttributeError("composite 'stats' is derived from the partitions")

    def tenant_stats(self) -> Dict[int, dict]:
        """Per-tenant counters + quota occupancy (the bench's fairness rows)."""
        out = {}
        for t, inner in self.inners.items():
            row = inner.stats.as_dict()
            row["quota_bytes"] = inner.capacity
            row["used_bytes"] = inner.used
            out[t] = row
        return out

    def __len__(self) -> int:
        total = 0
        for inner in self.inners.values():
            try:
                total += len(inner)
            except (NotImplementedError, TypeError):
                pass
        return total

    def check_invariants(self) -> None:
        """Quota discipline + every inner's own structural checks."""
        assert sum(i.capacity for i in self.inners.values()) <= self.capacity, (
            "quotas exceed total capacity"
        )
        for t, inner in self.inners.items():
            assert inner.used <= inner.capacity, f"tenant {t} over quota"
            check = getattr(inner, "check_invariants", None)
            if check is not None:
                check()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TenantPartitionedCache(capacity={self.capacity}, "
            f"tenants={self.n_tenants}, quotas={self.quotas()})"
        )
