"""Online capacity allocation: waterfilling over live MRC marginal gains.

Given each tenant's live miss-ratio curve (:class:`~repro.tenancy.mrc.
TenantMRCEstimator`) and its share of the request rate, the allocator
re-solves the capacity split by greedy waterfilling: start every tenant at
a protected floor, then hand out one quantum at a time to whichever tenant
the objective favours, using the curves' *marginal gains* — how much a
tenant's miss ratio drops if it gets one more quantum.

Two objectives:

* ``"utilization"`` — each quantum goes to the tenant with the largest
  rate-weighted marginal gain (``rate × Δmr``): minimises the cluster-wide
  expected miss rate, but a hot tenant can starve a cold one down to the
  floor;
* ``"fairness"`` — each quantum goes to the tenant with the *worst*
  predicted miss ratio among those a quantum would still help: a max-min
  split that lifts the worst-off tenant first (the bench's acceptance
  metric is exactly the worst tenant's miss ratio).

Solving is cheap; *acting* is not (a shrink evicts residents).  So the
same :class:`~repro.orchestrate.controller.HysteresisGate` that damps
policy switches gates re-allocations: evidence + cooldown via
:meth:`~repro.orchestrate.controller.HysteresisGate.ready`, and the
proposal's predicted cost (rate-weighted expected miss ratio) must beat
the current split's by the hysteresis margins — unless the caller
``force``-s the action because a tenant's SLO burn rate demands relief
*now* (the gate's cooldown still applies, so even burns cannot flap).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.orchestrate.controller import ControllerConfig, HysteresisGate

__all__ = ["CapacityAllocator"]

#: Protocol (duck-typed): anything with ``miss_ratio_at(capacity) -> float``
#: works as a curve — in practice :class:`~repro.tenancy.mrc.
#: TenantMRCEstimator`.


class CapacityAllocator:
    """Waterfilling capacity splitter with anti-flap gating.

    Parameters
    ----------
    capacity:
        Total byte budget to split.
    n_tenants:
        Number of tenants (ids ``0 .. n_tenants-1``).
    quantum:
        Allocation granularity in bytes (default ``capacity // 64``).
    min_share:
        Protected floor per tenant as a fraction of ``capacity`` — no
        tenant is ever squeezed below it, so a starved tenant retains a
        foothold from which its curve (and hence its claim) can recover.
    objective:
        ``"fairness"`` (default) or ``"utilization"``; see module doc.
    config:
        :class:`~repro.orchestrate.controller.ControllerConfig` for the
        gate (hysteresis / min_gap / cooldown / min_samples).
    """

    def __init__(
        self,
        capacity: int,
        n_tenants: int,
        quantum: Optional[int] = None,
        min_share: float = 0.05,
        objective: str = "fairness",
        config: Optional[ControllerConfig] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {n_tenants}")
        if objective not in ("fairness", "utilization"):
            raise ValueError(
                f"objective must be 'fairness' or 'utilization', got {objective!r}"
            )
        if not 0.0 <= min_share <= 1.0 / n_tenants:
            raise ValueError(
                f"min_share must be in [0, 1/{n_tenants}], got {min_share}"
            )
        self.capacity = int(capacity)
        self.n_tenants = int(n_tenants)
        self.quantum = (
            max(int(quantum), 1) if quantum is not None
            else max(self.capacity // 64, 1)
        )
        self.floor = max(int(self.capacity * min_share), 1)
        self.objective = objective
        self.gate = HysteresisGate(config)
        self.config = self.gate.config
        self.evaluations = 0

    # -- the solver ----------------------------------------------------------
    def solve(self, curves: Mapping[int, object], rates: Mapping[int, float]) -> Dict[int, int]:
        """Waterfill ``capacity`` over the tenants' live curves.

        ``curves`` maps tenant → an object with ``miss_ratio_at(bytes)``;
        ``rates`` maps tenant → its request-rate share (any positive
        scale).  Returns ``{tenant: bytes}`` summing to exactly
        ``capacity``.
        """
        alloc = {t: self.floor for t in range(self.n_tenants)}
        remaining = self.capacity - self.floor * self.n_tenants
        q = self.quantum
        while remaining >= q:
            best_t = None
            best_score = 0.0
            for t in range(self.n_tenants):
                mr_here = curves[t].miss_ratio_at(alloc[t])
                gain = mr_here - curves[t].miss_ratio_at(alloc[t] + q)
                if gain <= 0.0:
                    continue  # flat curve: a quantum buys this tenant nothing
                if self.objective == "utilization":
                    score = rates.get(t, 0.0) * gain
                else:  # fairness: lift the worst-off tenant that capacity helps
                    score = mr_here
                if best_t is None or score > best_score:
                    best_t, best_score = t, score
            if best_t is None:
                break  # every curve is flat past its allocation
            alloc[best_t] += q
            remaining -= q
        # Park any sub-quantum (or all-flat) remainder round-robin so the
        # split always sums to the full budget.
        t = 0
        while remaining > 0:
            give = min(q, remaining)
            alloc[t % self.n_tenants] += give
            remaining -= give
            t += 1
        return alloc

    def predicted_cost(
        self, alloc: Mapping[int, int], curves: Mapping[int, object], rates: Mapping[int, float]
    ) -> float:
        """Rate-weighted expected miss ratio under ``alloc`` (lower is
        better) — the score the gate compares splits by."""
        total_rate = sum(rates.get(t, 0.0) for t in range(self.n_tenants))
        if total_rate <= 0.0:
            return 0.0
        return sum(
            rates.get(t, 0.0) * curves[t].miss_ratio_at(alloc[t])
            for t in range(self.n_tenants)
        ) / total_rate

    # -- the gated decision ----------------------------------------------------
    def consider(
        self,
        now: int,
        sampled: int,
        curves: Mapping[int, object],
        rates: Mapping[int, float],
        current: Mapping[int, int],
        force: bool = False,
    ) -> Optional[Dict[int, int]]:
        """Return the new split to apply, or ``None`` to hold.

        Parameters
        ----------
        now:
            Live request index (the cooldown clock).
        sampled:
            Sampled requests accrued across the tenants' estimators
            (evidence gate).
        curves, rates:
            Live inputs to :meth:`solve`.
        current:
            The split currently enforced.
        force:
            ``True`` when an SLO burn demands relief: skips the
            improvement margins (the proposal only needs to be different
            and not predicted *worse*), but never the cooldown — a
            burning tenant cannot make the allocator flap either.
        """
        self.evaluations += 1
        if not self.gate.ready(now, sampled):
            return None
        proposal = self.solve(curves, rates)
        if all(proposal[t] == current.get(t) for t in proposal):
            return None
        challenger = self.predicted_cost(proposal, curves, rates)
        incumbent = self.predicted_cost(current, curves, rates)
        if force:
            if challenger <= incumbent:
                self.gate.fire(now)
                return proposal
            return None
        if self.gate.improves(challenger, incumbent):
            self.gate.fire(now)
            return proposal
        return None
