"""Command-line interface.

The subcommands mirror the library's workflow::

    python -m repro simulate    --policy SCIP --workload CDN-T --fraction 0.02 \\
                                [--trace-file big.bin --batch] \\
                                [--trace-out events.jsonl --obs-summary]
    python -m repro experiment  fig8 [--scale bench]
    python -m repro workload    --name CDN-W -n 50000 -o cdnw.tr [--analyze]
    python -m repro trace       gen|convert|info ... (binary trace files)
    python -m repro report      [--scale bench] -o EXPERIMENTS.md
    python -m repro bench       engine|serve|orchestrate|cluster|net|tenancy \\
                                [--quick] [--seed N] [-o BENCH_<target>.json]
    python -m repro obs         events.jsonl [--rows 24]
    python -m repro trace-report spans.jsonl [--trace ID] [--waterfalls 1]

`simulate` replays one policy on one workload (optionally recording a
schema-versioned JSONL event stream, registry snapshots, and a run
manifest), and with ``--batch`` streams ``.bin`` traces through the
array-backed batch engine at paper scale; `experiment` prints a paper
table; `workload` generates/analyses/saves traces; `trace` generates,
converts (text<->binary, streaming both ways), and inspects binary trace
files; `report` regenerates the full paper-vs-measured document; `obs`
reads an event stream back into the ω_m/ω_l and λ learner trajectories;
`trace-report` renders per-stage latency tables, critical-path
breakdowns, and span waterfalls from the stream ``--span-out`` records
on the serving benches.

`bench <target>` drives every benchmark through one registry
(:func:`repro.bench.bench_registry`) with uniform ``--quick`` /
``--seed`` / ``-o`` conventions, and always persists the **unified
envelope** (:data:`repro.bench.BENCH_RESULT_SCHEMA`: top-level
``schema`` / ``target`` / ``config`` / ``results`` / ``manifest``)
rather than the per-target legacy layout.  Targets: ``engine`` (replay
micro-benchmark), ``serve`` (asyncio cache service + load generator),
``orchestrate`` (shadow-cache policy switching), ``cluster``
(replication under faults), ``net`` (cache-tree placement grid), and
``tenancy`` (online multi-tenant capacity allocation).  The retired
spellings — bare ``bench``, ``serve-bench``, ``orchestrate-bench``,
``cluster-bench``, ``net-bench`` — still parse but emit a
``DeprecationWarning`` and forward to the corresponding target.

Policy names everywhere come from the unified registry
(:func:`repro.cache.registry.available_policies`); every subcommand exits
2 on invalid arguments (unknown policy/trace names, out-of-range knobs).
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional

__all__ = ["main"]


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.cache.registry import resolve_policy
    from repro.sim.engine import simulate
    from repro.traces.binfmt import BinTraceReader, TraceFormatError, is_bin_trace, read_bin
    from repro.traces.cdn import make_workload
    from repro.traces.io import read_lrb

    try:
        factory = resolve_policy(args.policy)
    except KeyError as exc:
        print(str(exc).strip('"\''))
        return 2

    if args.batch:
        return _simulate_batch(args)

    if args.trace_file:
        try:
            if is_bin_trace(args.trace_file):
                trace = read_bin(args.trace_file)
            else:
                trace = read_lrb(args.trace_file)
        except (TraceFormatError, ValueError, OSError) as exc:
            print(f"cannot read trace: {exc}")
            return 2
    else:
        trace = make_workload(args.workload, n_requests=args.requests)
    if args.cache_bytes:
        cap = args.cache_bytes
    elif args.trace_file and is_bin_trace(args.trace_file):
        # Plan capacity from the header's working-set estimate so the same
        # file + fraction gives the same cache with and without --batch.
        with BinTraceReader(args.trace_file) as reader:
            cap = max(int(reader.wss_estimate * args.fraction), 1)
    else:
        cap = max(int(trace.working_set_size * args.fraction), 1)

    if args.snapshot_every < 0:
        print(f"--snapshot-every must be >= 0, got {args.snapshot_every}")
        return 2
    obs = None
    if args.trace_out or args.obs_summary or args.snapshot_every or args.manifest_out:
        from repro.obs import ObsConfig

        manifest_out = args.manifest_out
        if manifest_out is None and args.trace_out:
            manifest_out = args.trace_out + ".manifest.json"
        obs = ObsConfig(
            trace_out=args.trace_out,
            snapshot_every=args.snapshot_every,
            manifest_out=manifest_out,
        )

    try:
        res = simulate(factory(cap), trace, warmup=args.warmup, obs=obs)
    except OSError as exc:
        if obs is None:
            raise
        print(f"cannot write observability output: {exc}")
        return 2
    print(
        f"{res.policy} on {res.trace}: miss_ratio={res.miss_ratio:.4f} "
        f"byte_miss_ratio={res.byte_miss_ratio:.4f} tps={res.tps:,.0f} "
        f"cache={cap / 1e9:.3f} GB"
    )
    if res.obs is not None:
        if args.trace_out:
            print(f"wrote {args.trace_out} ({res.obs['events_written']} events)")
        if obs.manifest_out:
            print(f"wrote {obs.manifest_out}")
        if args.obs_summary:
            print(_format_registry(res.obs["registry"]))
    return 0


def _simulate_batch(args: argparse.Namespace) -> int:
    """``simulate --batch``: stream the trace through an array-backed core.

    Binary trace files never materialise in memory — capacity defaults to
    ``fraction`` of the header's working-set estimate so a paper-scale
    file needs no preparatory full scan.
    """
    from repro.sim.batch import batch_supported, simulate_batch
    from repro.traces.binfmt import BinTraceReader, TraceFormatError, is_bin_trace
    from repro.traces.cdn import make_workload

    if not batch_supported(args.policy):
        from repro.sim.batch import BATCH_POLICIES

        print(
            f"policy {args.policy!r} has no batch core; "
            f"batch-capable: {sorted(BATCH_POLICIES)} (drop --batch for the rich engine)"
        )
        return 2
    if args.trace_out or args.snapshot_every or args.manifest_out:
        print(
            "--batch replays arrays, not events; event-stream flags need the rich "
            "engine (--obs-summary works: chunk-boundary aggregates)"
        )
        return 2

    reader = None
    try:
        if args.trace_file:
            if not is_bin_trace(args.trace_file):
                print(
                    f"{args.trace_file} is not a binary trace; convert it first "
                    "(repro trace convert) or drop --batch"
                )
                return 2
            try:
                reader = BinTraceReader(args.trace_file)
            except (TraceFormatError, OSError) as exc:
                print(f"cannot read trace: {exc}")
                return 2
            source = reader
            wss = reader.wss_estimate
        else:
            source = make_workload(args.workload, n_requests=args.requests)
            wss = source.working_set_size
        cap = args.cache_bytes or max(int(wss * args.fraction), 1)
        res = simulate_batch(args.policy, source, cap, warmup=args.warmup)
    finally:
        if reader is not None:
            reader.close()
    print(
        f"{res.policy} on {res.trace} [batch]: miss_ratio={res.miss_ratio:.4f} "
        f"byte_miss_ratio={res.byte_miss_ratio:.4f} tps={res.tps:,.0f} "
        f"cache={cap / 1e9:.3f} GB"
    )
    if args.obs_summary and res.obs is not None:
        print(_format_registry(res.obs["registry"]))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.traces.binfmt import TraceFormatError

    try:
        return args.trace_func(args)
    except TraceFormatError as exc:
        print(f"invalid trace: {exc}")
        return 2
    except (ValueError, KeyError) as exc:
        print(str(exc).strip('"\''))
        return 2
    except OSError as exc:
        print(f"I/O error: {exc}")
        return 2


def _format_header(h: dict) -> str:
    count = h.get("count", h.get("total_requests", 0))
    msize = h.get("max_size", h.get("max_object_size", 0))
    return (
        f"{count:,} requests, ~{h['unique_estimate']:,} objects, "
        f"WSS ~{h['wss_estimate'] / 1e9:.2f} GB, "
        f"{h['total_bytes'] / 1e9:.2f} GB requested, max object {msize:,} B"
    )


def _cmd_trace_gen(args: argparse.Namespace) -> int:
    if args.requests < 1:
        print(f"-n/--requests must be >= 1, got {args.requests}")
        return 2
    if args.stream:
        from repro.traces.streaming import make_stream_spec, stream_to_bin

        spec = make_stream_spec(args.workload, args.requests, seed=args.seed)
        header = stream_to_bin(spec, args.output)
    else:
        from repro.traces.cdn import workload_to_bin

        header = workload_to_bin(args.workload, args.requests, args.output, seed=args.seed)
    mode = "stream" if args.stream else "classic"
    print(f"wrote {args.output} ({args.workload} {mode}): {_format_header(header)}")
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    from repro.traces.binfmt import is_bin_trace
    from repro.traces.io import bin_to_text, text_to_bin

    if is_bin_trace(args.src):
        n = bin_to_text(args.src, args.dst, fmt=args.format)
        print(f"wrote {args.dst}: {n:,} requests (text)")
    else:
        header = text_to_bin(args.src, args.dst, fmt=args.format)
        print(f"wrote {args.dst} (binary): {_format_header(header)}")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.traces.binfmt import BinTraceReader

    with BinTraceReader(args.path) as reader:
        summary = reader.summary()
        for field in (
            "name",
            "path",
            "version",
            "total_requests",
            "key_min",
            "key_max",
            "total_bytes",
            "max_object_size",
            "unique_estimate",
            "wss_estimate",
            "checksum",
        ):
            print(f"{field:<16} {summary[field]}")
        if args.verify:
            reader.verify()
            print("checksum         OK (payload verified)")
    if args.receivers:
        if args.receivers < 1 or args.edges < 1:
            print("--receivers and --edges must be >= 1")
            return 2
        from repro.net.bench import _edge_wss
        from repro.net.receivers import ZipfReceivers, receiver_wss_from_bin

        rx = ZipfReceivers(args.receivers, beta=args.receiver_beta, seed=args.seed)
        rows = receiver_wss_from_bin(args.path, args.receivers, receivers=rx)
        print(
            f"per-edge WSS     {args.receivers} receivers "
            f"(beta={args.receiver_beta}) on {args.edges} edges (SHARDS estimates)"
        )
        for row in _edge_wss(rows, args.edges):
            print(
                f"  {row['edge']:<7} {row['receivers']:3d} receivers "
                f"rate={row['rate']:.3f} requests={row['requests']:,} "
                f"wss={row['wss_lower_bytes']:,}..{row['wss_upper_bytes']:,} bytes"
            )
    return 0


def _format_registry(registry: dict) -> str:
    """Render a registry snapshot as an aligned name/labels/value table."""
    lines = [f"{'metric':<24} {'labels':<24} {'value':>14}"]
    for name, by_label in registry.items():
        for label_str, payload in by_label.items():
            if payload["type"] == "histogram":
                value = (
                    f"n={payload['count']} mean={payload['mean']:.1f} "
                    f"p99={payload['p99']:.0f}"
                )
                lines.append(f"{name:<24} {label_str:<24} {value:>14}")
            else:
                value = payload["value"]
                formatted = f"{value:.4f}" if isinstance(value, float) else str(value)
                lines.append(f"{name:<24} {label_str:<24} {formatted:>14}")
    return "\n".join(lines)


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        event_counts,
        format_learner_table,
        format_summary,
        learner_series,
        read_events,
    )

    try:
        events = list(read_events(args.events))
    except FileNotFoundError:
        print(f"no such event stream: {args.events}")
        return 2
    except ValueError as exc:
        print(f"cannot read {args.events}: {exc}")
        return 2
    print(format_summary(event_counts(events)))
    print()
    print(format_learner_table(learner_series(events), max_rows=args.rows))
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.tracereport import format_trace_report

    if args.waterfalls < 0:
        print(f"--waterfalls must be >= 0, got {args.waterfalls}")
        return 2
    try:
        report = format_trace_report(
            args.spans, trace_id=args.trace, waterfalls=args.waterfalls
        )
    except FileNotFoundError:
        print(f"no such span stream: {args.spans}")
        return 2
    except (ValueError, KeyError) as exc:
        print(f"cannot read {args.spans}: {exc}")
        return 2
    print(report)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.experiments as E

    modules = {
        "table1": E.table1_workloads,
        "fig1": E.fig1_zro,
        "fig3": E.fig3_theoretical,
        "fig4": E.fig4_models,
        "fig6": E.fig6_tdc,
        "fig7": E.fig7_scip_vs_sci,
        "fig8": E.fig8_insertion,
        "fig9": E.fig9_resources_ins,
        "fig10": E.fig10_replacement,
        "fig11": E.fig11_resources_repl,
        "fig12": E.fig12_enhance,
        "ablations": E.ablations,
        "convergence": E.convergence,
    }
    if args.name == "all":
        for mod in modules.values():
            mod.main(scale=args.scale)
        return 0
    if args.name not in modules:
        print(f"unknown experiment {args.name!r}; available: {sorted(modules)} or 'all'")
        return 2
    modules[args.name].main(scale=args.scale)
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.traces.cdn import make_workload
    from repro.traces.io import write_lrb

    trace = make_workload(args.name, n_requests=args.requests)
    summary = trace.summary()
    print(
        f"{args.name}: {summary['total_requests']:,} requests, "
        f"{summary['unique_objects']:,} objects, "
        f"WSS {summary['working_set_size'] / 1e9:.2f} GB"
    )
    if args.analyze:
        from repro.traces.analysis import fig1_panel

        for row in fig1_panel(trace, fractions=(0.01, 0.05)):
            print(
                f"  cache {row.cache_fraction:.0%}: mr(LRU)={row.miss_ratio_lru:.3f} "
                f"ZRO%={row.zro_share_of_misses:.1%} "
                f"PZRO%={row.pzro_share_of_hits:.1%}"
            )
    if args.output:
        write_lrb(trace, args.output)
        print(f"wrote {args.output}")
    return 0


def _run_unified_bench(target: str, args: argparse.Namespace, **kwargs) -> int:
    """Drive one registry target through :func:`repro.bench.run_bench`,
    print its human summary, and persist the unified envelope."""
    from repro.bench import bench_registry, run_bench

    spec = bench_registry()[target]
    try:
        result = run_bench(
            target,
            output=args.output or None,
            quick=args.quick,
            seed=getattr(args, "seed", None),
            **kwargs,
        )
    except KeyError as exc:
        print(str(exc).strip('"\''))
        return 2
    except ValueError as exc:
        print(str(exc))
        return 2
    except OSError as exc:
        print(f"cannot write {args.output}: {exc}")
        return 2
    print(spec.formatter(result.legacy_doc()))
    if result.path:
        print(f"wrote {result.path}")
    return 0


def _cmd_bench_engine(args: argparse.Namespace) -> int:
    return _run_unified_bench(
        "engine",
        args,
        policies=[p.strip() for p in args.policies.split(",") if p.strip()],
        workload=args.workload,
        n_requests=args.requests,
        fraction=args.fraction,
        repeats=args.repeats,
    )


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}")
        return 2
    if args.concurrency is not None and args.concurrency < 1:
        print(f"--concurrency must be >= 1, got {args.concurrency}")
        return 2
    if not 0.0 <= args.trace_sample <= 1.0:
        print(f"--trace-sample must be in [0, 1], got {args.trace_sample}")
        return 2
    # None-valued knobs fall through to the library (and quick-mode) defaults.
    knobs = {
        "workload": args.workload,
        "n_requests": args.requests,
        "concurrency": args.concurrency,
        "rate": args.rate,
        "origin_latency": (
            args.origin_latency / 1000.0 if args.origin_latency is not None else None
        ),
        "failure_rate": args.failure_rate,
    }
    return _run_unified_bench(
        "serve",
        args,
        policy=args.policy,
        fraction=args.fraction,
        n_shards=args.shards,
        queue_depth=args.queue_depth,
        timeout=args.timeout,
        max_retries=args.max_retries,
        trace_sample=args.trace_sample,
        span_out=args.span_out or None,
        tail_latency_us=(
            args.tail_latency_ms * 1000.0 if args.tail_latency_ms is not None else None
        ),
        **{k: v for k, v in knobs.items() if v is not None},
    )


def _cmd_bench_orchestrate(args: argparse.Namespace) -> int:
    candidates = tuple(c.strip() for c in args.candidates.split(",") if c.strip())
    if len(candidates) < 2:
        print("--candidates needs at least two policy names")
        return 2
    if not 0.0 < args.sample_rate <= 1.0:
        print(f"--sample-rate must be in (0, 1], got {args.sample_rate}")
        return 2
    return _run_unified_bench(
        "orchestrate",
        args,
        trace=args.trace,
        n_requests=args.requests,
        fraction=args.fraction,
        candidates=candidates,
        sample_rate=args.sample_rate,
        window=args.window,
        hysteresis=args.hysteresis,
        min_gap=args.min_gap,
        cooldown=args.cooldown,
        objective=args.objective,
    )


def _cmd_bench_cluster(args: argparse.Namespace) -> int:
    if args.nodes < 1:
        print(f"--nodes must be >= 1, got {args.nodes}")
        return 2
    try:
        replications = tuple(
            int(r.strip()) for r in args.replications.split(",") if r.strip()
        )
    except ValueError:
        print(f"--replications must be comma-separated ints, got {args.replications!r}")
        return 2
    if not replications:
        print("--replications needs at least one replication factor")
        return 2
    for r in replications:
        if not 1 <= r <= args.nodes:
            print(f"--replications entries must be in [1, --nodes={args.nodes}], got {r}")
            return 2
    if not 0.0 < args.kill_frac < args.restart_frac <= 1.0:
        print(
            "--kill-frac and --restart-frac must satisfy "
            f"0 < kill < restart <= 1, got {args.kill_frac} / {args.restart_frac}"
        )
        return 2
    if not 0.0 <= args.trace_sample <= 1.0:
        print(f"--trace-sample must be in [0, 1], got {args.trace_sample}")
        return 2
    return _run_unified_bench(
        "cluster",
        args,
        trace=args.trace,
        n_requests=args.requests,
        n_nodes=args.nodes,
        policy=args.policy,
        fraction=args.fraction,
        n_shards=args.shards,
        kill_frac=args.kill_frac,
        restart_frac=args.restart_frac,
        window=args.window,
        replications=replications,
        trace_sample=args.trace_sample,
        span_out=args.span_out or None,
    )


def _cmd_bench_net(args: argparse.Namespace) -> int:
    try:
        branching = tuple(
            int(b.strip()) for b in args.branching.split(",") if b.strip()
        )
        placements = tuple(
            p.strip().upper() for p in args.placements.split(",") if p.strip()
        )
        edge_policies = tuple(
            p.strip() for p in args.edge_policies.split(",") if p.strip()
        )
    except ValueError:
        print(f"--branching must be comma-separated ints, got {args.branching!r}")
        return 2
    if not branching or any(b < 1 for b in branching):
        print(f"--branching factors must be >= 1, got {args.branching!r}")
        return 2
    if not placements or not edge_policies:
        print("--placements and --edge-policies need at least one entry each")
        return 2
    if args.receivers < 1:
        print(f"--receivers must be >= 1, got {args.receivers}")
        return 2
    if not 0.0 < args.kill_frac < args.restart_frac <= 1.0:
        print(
            "--kill-frac and --restart-frac must satisfy "
            f"0 < kill < restart <= 1, got {args.kill_frac} / {args.restart_frac}"
        )
        return 2
    return _run_unified_bench(
        "net",
        args,
        trace=args.trace,
        n_requests=args.requests,
        branching=branching,
        fraction=args.fraction,
        edge_policies=edge_policies,
        upper_policy=args.upper_policy,
        placements=placements,
        prob_p=args.prob_p,
        n_receivers=args.receivers,
        receiver_beta=args.receiver_beta,
        kill_frac=args.kill_frac,
        restart_frac=args.restart_frac,
        window=args.window,
    )


def _cmd_bench_tenancy(args: argparse.Namespace) -> int:
    tenants = tuple(t.strip() for t in args.tenants.split(",") if t.strip())
    if len(tenants) < 2:
        print("--tenants needs at least two trace families")
        return 2
    if not 0.0 < args.mr_slo < 1.0:
        print(f"--mr-slo must be in (0, 1), got {args.mr_slo}")
        return 2
    if not 0.0 < args.sample_rate <= 1.0:
        print(f"--sample-rate must be in (0, 1], got {args.sample_rate}")
        return 2
    if not 0.0 <= args.min_share <= 1.0 / len(tenants):
        print(
            f"--min-share must be in [0, 1/{len(tenants)}], got {args.min_share}"
        )
        return 2
    return _run_unified_bench(
        "tenancy",
        args,
        tenants=tenants,
        n_requests=args.requests,
        fraction=args.fraction,
        mr_slo=args.mr_slo,
        burn_threshold=args.burn_threshold,
        objective=args.objective,
        sample_rate=args.sample_rate,
        window=args.window,
        cooldown=args.cooldown,
        eval_every=args.eval_every,
        min_share=args.min_share,
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    write_report(args.output, scale=args.scale)
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SCIP (ICPP 2023) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="replay one policy on one workload")
    p.add_argument("--policy", default="SCIP")
    p.add_argument("--workload", default="CDN-T", choices=["CDN-T", "CDN-W", "CDN-A"])
    p.add_argument(
        "--trace-file",
        help="trace file instead of synthetic (LRB text or .bin, sniffed by magic)",
    )
    p.add_argument("-n", "--requests", type=int, default=100_000)
    p.add_argument("--fraction", type=float, default=0.02, help="cache size as WSS fraction")
    p.add_argument(
        "--cache-bytes",
        type=int,
        default=0,
        help="absolute capacity in bytes (overrides --fraction)",
    )
    p.add_argument(
        "--batch",
        action="store_true",
        help="stream through the array-backed batch engine (LRU/FIFO/CLOCK/SIEVE); "
        ".bin traces replay without materialising in memory",
    )
    p.add_argument("--warmup", type=int, default=0)
    p.add_argument(
        "--trace-out",
        help="record a JSONL observability event stream here (.gz to compress)",
    )
    p.add_argument(
        "--obs-summary",
        action="store_true",
        help="print the final metrics-registry snapshot after the run",
    )
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        metavar="N",
        help="emit a registry snapshot into the event stream every N requests",
    )
    p.add_argument(
        "--manifest-out",
        help="run-manifest path (default: <trace-out>.manifest.json when tracing)",
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("experiment", help="run a paper table/figure")
    p.add_argument("name", help="table1, fig1…fig12, ablations, convergence, or all")
    p.add_argument("--scale", default="bench", choices=["smoke", "bench", "default"])
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("workload", help="generate / analyse / save a workload")
    p.add_argument("--name", default="CDN-T", choices=["CDN-T", "CDN-W", "CDN-A"])
    p.add_argument("-n", "--requests", type=int, default=100_000)
    p.add_argument("-o", "--output", help="write LRB-format trace here")
    p.add_argument("--analyze", action="store_true", help="run the Figure 1 analysis")
    p.set_defaults(func=_cmd_workload)

    p = sub.add_parser(
        "trace", help="binary trace files: generate, convert, inspect"
    )
    p.set_defaults(func=_cmd_trace)
    tsub = p.add_subparsers(dest="trace_command", required=True)

    t = tsub.add_parser("gen", help="generate a workload straight into a .bin file")
    t.add_argument("--workload", default="CDN-T", choices=["CDN-T", "CDN-W", "CDN-A"])
    t.add_argument("-n", "--requests", type=int, default=1_000_000)
    t.add_argument("-o", "--output", required=True, help="output .bin path")
    t.add_argument("--seed", type=int, default=None)
    t.add_argument(
        "--stream",
        action="store_true",
        help="constant-memory streaming generator (paper-scale; different trace "
        "family from the classic in-memory generator)",
    )
    t.set_defaults(trace_func=_cmd_trace_gen)

    t = tsub.add_parser(
        "convert", help="text (LRB/CSV) -> .bin or .bin -> text, streaming both ways"
    )
    t.add_argument("src", help="source trace (direction sniffed from its magic)")
    t.add_argument("dst", help="destination path")
    t.add_argument(
        "--format",
        choices=["lrb", "csv"],
        default=None,
        help="text side's format (default: sniffed from the text file's suffix)",
    )
    t.set_defaults(trace_func=_cmd_trace_convert)

    t = tsub.add_parser("info", help="print a .bin trace's header summary")
    t.add_argument("path")
    t.add_argument(
        "--verify",
        action="store_true",
        help="re-read the payload and check it against the header checksum",
    )
    t.add_argument(
        "--receivers", type=int, default=0, metavar="N",
        help="also stream the payload through N Zipf-rated receivers and "
             "print per-edge SHARDS working-set estimates",
    )
    t.add_argument(
        "--receiver-beta", type=float, default=0.8,
        help="Zipf skew of the receiver request rates (0 = uniform)",
    )
    t.add_argument(
        "--edges", type=int, default=8,
        help="edge-node count the receivers attach to (receiver r -> edge r%%edges)",
    )
    t.add_argument("--seed", type=int, default=0, help="receiver assignment seed")
    t.set_defaults(trace_func=_cmd_trace_info)

    p = sub.add_parser(
        "bench",
        help="run one registered bench target; writes the unified envelope "
        "(schema BENCH_RESULT_SCHEMA) to BENCH_<target>.json",
    )
    bsub = p.add_subparsers(dest="bench_target", required=True)

    p = bsub.add_parser(
        "engine", help="engine replay micro-benchmark (legacy vs fast path)"
    )
    p.add_argument("--policies", default="LRU,ARC,SCIP", help="comma-separated policy names")
    p.add_argument("--workload", default="CDN-T", choices=["CDN-T", "CDN-W", "CDN-A"])
    p.add_argument("-n", "--requests", type=int, default=200_000)
    p.add_argument("--fraction", type=float, default=0.02, help="cache size as WSS fraction")
    p.add_argument("--repeats", type=int, default=3, help="timing repeats, best-of")
    p.add_argument("--seed", type=int, default=None,
                   help="workload seed (default: the workload's fixed seed)")
    p.add_argument("-o", "--output", default="BENCH_engine.json", help="result JSON path ('' to skip)")
    p.add_argument("--quick", action="store_true", help="CI smoke mode: 30k requests, 1 repeat")
    p.set_defaults(func=_cmd_bench_engine)

    p = bsub.add_parser(
        "serve",
        help="concurrent cache service + closed-loop load generator (one process)",
    )
    p.add_argument("--policy", default="SCIP")
    p.add_argument("--workload", default=None, choices=["CDN-T", "CDN-W", "CDN-A"],
                   help="workload profile (default CDN-T; --quick defaults to CDN-W)")
    p.add_argument("-n", "--requests", type=int, default=None,
                   help="trace length (default 50000; --quick caps at 20000)")
    p.add_argument("--fraction", type=float, default=0.02, help="cache size as WSS fraction")
    p.add_argument("--shards", type=int, default=4, help="key-shard count")
    p.add_argument("--concurrency", type=int, default=None,
                   help="closed-loop client count (default 64)")
    p.add_argument("--queue-depth", type=int, default=256,
                   help="per-shard pending-request bound (0 = unbounded, no shedding)")
    p.add_argument("--rate", type=float, default=None,
                   help="target arrival rate, req/s (default: unpaced closed loop)")
    p.add_argument("--origin-latency", type=float, default=None, metavar="MS",
                   help="mean simulated origin latency in milliseconds (default 2)")
    p.add_argument("--failure-rate", type=float, default=None,
                   help="probability an origin fetch attempt fails (default 0)")
    p.add_argument("--timeout", type=float, default=0.5,
                   help="per-attempt origin timeout, seconds")
    p.add_argument("--max-retries", type=int, default=3,
                   help="origin fetch retries after the first attempt")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace-sample", type=float, default=0.0, metavar="P",
                   help="head-sample this fraction of requests into spans "
                        "(0 disables tracing; tail-keep retains error/slow "
                        "traces regardless)")
    p.add_argument("--span-out", default=None,
                   help="write kept traces as JSONL span records here "
                        "(.gz to compress; implies tracing even at sample 0)")
    p.add_argument("--tail-latency-ms", type=float, default=None, metavar="MS",
                   help="tail-keep threshold: retain any trace slower than "
                        "this end-to-end (default: 5x origin latency)")
    p.add_argument("-o", "--output", default="BENCH_serve.json",
                   help="result JSON path ('' to skip)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: 20k-request CDN-W, 2 ms origin (~seconds)")
    p.set_defaults(func=_cmd_bench_serve)

    p = bsub.add_parser(
        "orchestrate",
        help="shadow-cache policy orchestration vs fixed candidates on a drift trace",
    )
    p.add_argument("--trace", default="diurnal",
                   choices=["churn", "sizeshift", "flash", "diurnal"],
                   help="nonstationary trace family")
    p.add_argument("-n", "--requests", type=int, default=120_000,
                   help="trace length (--quick caps at 40000)")
    p.add_argument("--fraction", type=float, default=0.02, help="cache size as WSS fraction")
    p.add_argument("--candidates", default="LRU,SCIP,SIEVE,S4LRU,GDSF",
                   help="comma-separated candidate policies; the live cache starts "
                        "on the first (--quick narrows the default menu to LRU,GDSF)")
    p.add_argument("--sample-rate", type=float, default=0.2,
                   help="SHARDS spatial sampling rate R for the shadow rack")
    p.add_argument("--window", type=int, default=400,
                   help="effective decay window for shadow miss-ratio scores, "
                        "in sampled requests")
    p.add_argument("--hysteresis", type=float, default=0.06,
                   help="relative score margin a challenger must win by")
    p.add_argument("--min-gap", type=float, default=0.015,
                   help="absolute score margin required on top of hysteresis")
    p.add_argument("--cooldown", type=int, default=10_000,
                   help="live requests between switches")
    p.add_argument("--objective", default="object", choices=["object", "byte"],
                   help="miss-ratio objective the controller optimises")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default="BENCH_orchestrate.json",
                   help="result JSON path ('' to skip)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: 40k requests, two-candidate menu (~seconds)")
    p.set_defaults(func=_cmd_bench_orchestrate)

    p = bsub.add_parser(
        "cluster",
        help="replicated multi-node cluster under a kill/restart fault schedule",
    )
    p.add_argument("--trace", default="flash",
                   choices=["churn", "sizeshift", "flash", "diurnal"],
                   help="drift trace family replayed through the cluster")
    p.add_argument("-n", "--requests", type=int, default=60_000,
                   help="trace length (--quick caps at 24000)")
    p.add_argument("--nodes", type=int, default=3, help="fleet size")
    p.add_argument("--policy", default="LRU", help="per-node cache policy")
    p.add_argument("--fraction", type=float, default=0.1,
                   help="total cluster capacity as WSS fraction")
    p.add_argument("--shards", type=int, default=1, help="shards per node service")
    p.add_argument("--replications", default="1,2",
                   help="comma-separated replication factors to compare")
    p.add_argument("--kill-frac", type=float, default=0.4,
                   help="kill the busiest node at this fraction of the trace")
    p.add_argument("--restart-frac", type=float, default=0.7,
                   help="restart it (cold) at this fraction of the trace")
    p.add_argument("--window", type=int, default=2_000,
                   help="hit-ratio window size for dip/recovery measurement")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace-sample", type=float, default=0.0, metavar="P",
                   help="head-sample this fraction of requests into spans "
                        "(tail-keep retains every failover/error trace)")
    p.add_argument("--span-out", default=None,
                   help="write kept traces as JSONL span records here "
                        "(.gz to compress; multi-replication runs infix .R<r>)")
    p.add_argument("-o", "--output", default="BENCH_cluster.json",
                   help="result JSON path ('' to skip)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: 24k requests, 1k windows (~seconds)")
    p.set_defaults(func=_cmd_bench_cluster)

    p = bsub.add_parser(
        "net",
        help="placement x edge-policy grid over a multi-tier cache tree + PoP kill",
    )
    p.add_argument("--trace", default="CDN-T", choices=["CDN-T", "CDN-W", "CDN-A"],
                   help="named CDN workload replayed through the tree")
    p.add_argument("-n", "--requests", type=int, default=120_000,
                   help="trace length (--quick caps at 24000)")
    p.add_argument("--branching", default="4,2",
                   help="tree fan-in per tier, edge side first (4,2 = 8/2/1)")
    p.add_argument("--fraction", type=float, default=0.15,
                   help="total network capacity as WSS fraction")
    p.add_argument("--edge-policies", default="LRU,GDSF,SCIP",
                   help="comma-separated edge-tier policies to grid over")
    p.add_argument("--upper-policy", default="LRU",
                   help="policy for every non-edge tier")
    p.add_argument("--placements", default="LCE,LCD,PROB",
                   help="comma-separated on-path placement strategies")
    p.add_argument("--prob-p", type=float, default=0.7,
                   help="edge admit probability for PROB placement")
    p.add_argument("--receivers", type=int, default=32,
                   help="Zipf-rated receiver population size")
    p.add_argument("--receiver-beta", type=float, default=0.8,
                   help="Zipf skew of receiver request rates (0 = uniform)")
    p.add_argument("--kill-frac", type=float, default=0.4,
                   help="kill the busiest edge PoP at this fraction of the trace")
    p.add_argument("--restart-frac", type=float, default=0.7,
                   help="restart it (cold) at this fraction of the trace")
    p.add_argument("--window", type=int, default=2_000,
                   help="hit-ratio window size for dip/recovery measurement")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default="BENCH_net.json",
                   help="result JSON path ('' to skip)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: 24k requests, 1k windows (~seconds)")
    p.set_defaults(func=_cmd_bench_net)

    p = bsub.add_parser(
        "tenancy",
        help="online multi-tenant capacity allocation vs static partitioning",
    )
    p.add_argument("--tenants", default="churn,flash,diurnal",
                   help="comma-separated drift families, one per tenant "
                        "(choose from churn, sizeshift, flash, diurnal)")
    p.add_argument("-n", "--requests", type=int, default=120_000,
                   help="total trace length across tenants (--quick caps at 45000)")
    p.add_argument("--fraction", type=float, default=0.05,
                   help="total cache capacity as WSS fraction")
    p.add_argument("--mr-slo", type=float, default=0.5,
                   help="per-tenant miss-ratio objective in (0, 1)")
    p.add_argument("--burn-threshold", type=float, default=1.5,
                   help="SLO burn rate that forces a re-allocation")
    p.add_argument("--objective", default="fairness",
                   choices=["fairness", "utilization"],
                   help="waterfilling objective for the capacity split")
    p.add_argument("--sample-rate", type=float, default=0.2,
                   help="SHARDS sampling rate R for the per-tenant MRC grids")
    p.add_argument("--window", type=int, default=400,
                   help="decay window for live MRC points, in sampled requests")
    p.add_argument("--cooldown", type=int, default=8_000,
                   help="live requests between re-allocations")
    p.add_argument("--eval-every", type=int, default=500,
                   help="live requests between allocator evaluations")
    p.add_argument("--min-share", type=float, default=0.05,
                   help="protected per-tenant capacity floor (fraction of total)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default="BENCH_tenancy.json",
                   help="result JSON path ('' to skip)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: 45k requests (~seconds)")
    p.set_defaults(func=_cmd_bench_tenancy)

    p = sub.add_parser("obs", help="render learner trajectories from a JSONL event stream")
    p.add_argument("events", help="events.jsonl[.gz] written by simulate --trace-out")
    p.add_argument("--rows", type=int, default=24, help="max table rows (evenly sampled)")
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser(
        "trace-report",
        help="per-stage latency table, critical-path breakdown, and waterfalls "
        "from a span stream",
    )
    p.add_argument("spans", help="spans.jsonl[.gz] written via --span-out")
    p.add_argument("--trace", default=None,
                   help="render this trace id's waterfall (default: slowest)")
    p.add_argument("--waterfalls", type=int, default=1,
                   help="how many waterfalls to render, slowest first (0 = table only)")
    p.set_defaults(func=_cmd_trace_report)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p.add_argument("-o", "--output", default="EXPERIMENTS.md")
    p.add_argument("--scale", default="default", choices=["smoke", "bench", "default"])
    p.set_defaults(func=_cmd_report)
    return parser


#: Retired top-level commands -> their ``repro bench <target>`` home.
_LEGACY_BENCH_COMMANDS = {
    "serve-bench": "serve",
    "orchestrate-bench": "orchestrate",
    "cluster-bench": "cluster",
    "net-bench": "net",
}

_BENCH_TARGETS = ("engine", "serve", "orchestrate", "cluster", "net", "tenancy")


def _rewrite_legacy_bench_argv(argv: List[str]) -> List[str]:
    """Map retired bench spellings onto ``repro bench <target>``.

    ``repro serve-bench ...`` (and friends) forward with a
    ``DeprecationWarning``; so does bare ``repro bench --flags``, which
    historically meant the engine micro-benchmark and now needs an
    explicit ``engine`` target.  The rewrite happens *before* argparse so
    the shims share the real subparsers — one flag surface, one envelope.
    """
    if not argv:
        return argv
    head = argv[0]
    if head in _LEGACY_BENCH_COMMANDS:
        target = _LEGACY_BENCH_COMMANDS[head]
        warnings.warn(
            f"'repro {head}' is deprecated; use 'repro bench {target}'",
            DeprecationWarning,
            stacklevel=3,
        )
        return ["bench", target] + argv[1:]
    if head == "bench":
        rest = argv[1:]
        if not rest or (
            rest[0].startswith("-") and rest[0] not in ("-h", "--help")
        ):
            warnings.warn(
                "bare 'repro bench' is deprecated; use 'repro bench engine'",
                DeprecationWarning,
                stacklevel=3,
            )
            return ["bench", "engine"] + rest
    return argv


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    args = build_parser().parse_args(_rewrite_legacy_bench_argv(argv))
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
