"""Figure 10 — SCIP vs nine replacement algorithms (miss ratio).

Comparators: LRU, LRU-K, S4LRU, SS-LRU, GDSF, LHD, CACHEUS, LRB, GL-Cache —
heuristic and learned victim-selection policies that keep basic
insertion/promotion.  Belady is the floor.

Expected shape: SCIP at or near the best non-oracle miss ratio on every
workload (paper: SCIP beats GL-Cache, the best comparator, by 1.38 points
on average) — insertion-side intelligence competing with victim-side
intelligence.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cache import POLICIES, REPLACEMENT_POLICIES
from repro.core.scip import SCIPCache
from repro.experiments.common import (
    WARMUP_FRAC,
    CACHE_64GB_FRACTION,
    WORKLOAD_NAMES,
    get_trace,
    print_table,
)
from repro.sim.runner import run_grid

__all__ = ["run", "main", "POLICY_SET"]


def _policy_set() -> Dict:
    out = {"Belady": POLICIES["Belady"], "SCIP": SCIPCache}
    for name in REPLACEMENT_POLICIES:
        out[name] = POLICIES[name]
    return out


POLICY_SET = _policy_set()


def run(scale: str = "default", workloads: Sequence[str] = WORKLOAD_NAMES) -> List[Dict]:
    traces = [get_trace(name, scale) for name in workloads]
    fractions = {name: [CACHE_64GB_FRACTION[name]] for name in workloads}
    factories = {name: (lambda cap, c=cls: c(cap)) for name, cls in POLICY_SET.items()}
    return run_grid(factories, traces, fractions, warmup_frac=WARMUP_FRAC)


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "Figure 10: replacement algorithms, miss ratio (64 GB-equivalent)",
        rows,
        ["policy", "trace", "miss_ratio", "byte_miss_ratio"],
    )
    return rows


if __name__ == "__main__":
    main()
