"""Figure 9 — resource profile (peak CPU, peak memory, TPS) of the
insertion/promotion policies on CDN-T at the default cache size.

Measured analogues (see :mod:`repro.perf.meters`): single-core CPU
utilisation at the measured TPS, simulated metadata footprint plus measured
peak allocation, and raw replay TPS.

Expected shapes: the simple heuristics (LIP, DIP, PIPP, SHiP, ASC-IP) are
the cheapest; SCIP sits slightly above them (the paper: +0.42 % CPU on
average) but below the learning-heavy DGIPPR/DTA/DAAIP class; SCIP's memory
overhead over LIP is bounded by the history-list metadata.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import CACHE_64GB_FRACTION, get_trace, print_table
from repro.experiments.fig8_insertion import POLICY_SET
from repro.perf.meters import profile_many

__all__ = ["run", "main"]


def run(scale: str = "default", workload: str = "CDN-T") -> List[Dict]:
    tr = get_trace(workload, scale)
    cap = max(int(tr.working_set_size * CACHE_64GB_FRACTION[workload]), 1)
    factories = {
        name: (lambda c, cls=cls: cls(c))
        for name, cls in POLICY_SET.items()
        if name != "Belady"  # oracle has no production resource profile
    }
    profiles = profile_many(factories, tr, cap)
    return [p.as_dict() for p in profiles.values()]


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "Figure 9: insertion-policy resource profile (CDN-T)",
        rows,
        ["policy", "tps", "cpu_percent", "metadata_bytes", "peak_alloc_bytes", "miss_ratio"],
    )
    return rows


if __name__ == "__main__":
    main()
