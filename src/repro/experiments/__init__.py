"""One module per paper table/figure; each exposes ``run(scale)`` returning
tidy rows and ``main(scale)`` printing the paper-style table."""

from repro.experiments import (
    ablations,
    convergence,
    report,
    common,
    fig1_zro,
    fig3_theoretical,
    fig4_models,
    fig6_tdc,
    fig7_scip_vs_sci,
    fig8_insertion,
    fig9_resources_ins,
    fig10_replacement,
    fig11_resources_repl,
    fig12_enhance,
    table1_workloads,
)

__all__ = [
    "common",
    "table1_workloads",
    "fig1_zro",
    "fig3_theoretical",
    "fig4_models",
    "fig6_tdc",
    "fig7_scip_vs_sci",
    "fig8_insertion",
    "fig9_resources_ins",
    "fig10_replacement",
    "fig11_resources_repl",
    "fig12_enhance",
    "ablations",
    "convergence",
    "report",
]
