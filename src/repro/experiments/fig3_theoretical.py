"""Figure 3 — theoretical miss ratios when a growing share of ZRO / P-ZRO /
both events receives LRU-position treatment.

The x-axis is the fraction of labelled events (taken from the head of the
access sequence, as in the paper) that get treated; one curve per treatment
kind.  Expected shapes:

* each curve decreases monotonically (up to replay-interaction noise);
* MR(ZRO) < MR(P-ZRO) at equal treated fractions;
* MR(ZRO+P-ZRO) < both single-treatment curves at full treatment;
* sub-additivity: (MR_LRU − MR(ZRO)) + (MR_LRU − MR(P-ZRO)) >
  MR_LRU − MR(both) — the paper's evidence that the two event families
  interact (§2.2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import WORKLOAD_NAMES, get_trace, print_table
from repro.traces.oracle import label_events, treated_replay

__all__ = ["run", "main", "FRACTIONS"]

FRACTIONS: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0)
#: Cache size used for the Figure 3 replay (1 % of WSS — a small cache,
#: where ZRO pollution is most visible, matching the paper's setting).
CACHE_FRACTION = 0.01


def run(scale: str = "default", fractions: Sequence[float] = FRACTIONS) -> List[Dict]:
    rows: List[Dict] = []
    for name in WORKLOAD_NAMES:
        tr = get_trace(name, scale)
        cache_bytes = max(int(tr.working_set_size * CACHE_FRACTION), 1)
        labels = label_events(tr, cache_bytes)
        for frac in fractions:
            rows.append(
                {
                    "workload": name,
                    "treated_fraction": frac,
                    "mr_lru": labels.miss_ratio,
                    "mr_treat_zro": treated_replay(
                        tr, cache_bytes, labels, True, False, fraction=frac
                    ),
                    "mr_treat_pzro": treated_replay(
                        tr, cache_bytes, labels, False, True, fraction=frac
                    ),
                    "mr_treat_both": treated_replay(
                        tr, cache_bytes, labels, True, True, fraction=frac
                    ),
                }
            )
    return rows


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "Figure 3: theoretical miss ratios under fractional oracle treatment",
        rows,
        [
            "workload",
            "treated_fraction",
            "mr_lru",
            "mr_treat_zro",
            "mr_treat_pzro",
            "mr_treat_both",
        ],
    )
    return rows


if __name__ == "__main__":
    main()
