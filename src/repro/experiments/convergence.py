"""SCIP convergence analysis (extension beyond the paper's figures).

The paper claims SCIP "can adapt to the dynamic workload" (§3.3) but shows
no convergence data.  This experiment records, over one replay per workload:

* the interval hit-rate series (does a steady state exist, and how fast is
  it reached);
* the final ω_mru and λ (where the global model settles);
* cumulative denial/demotion counts (how active the per-object layer is).

The convergence point is the first interval from which the interval hit
rate stays within ``band`` of its final level — reported in requests, so it
can be compared against the history lists' reach and the warm-up fraction
the comparison experiments exclude.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.scip import SCIPCache
from repro.experiments.common import (
    CACHE_64GB_FRACTION,
    WORKLOAD_NAMES,
    get_trace,
    print_table,
)

__all__ = ["run", "main", "trajectory"]


def trajectory(
    trace, capacity: int, interval: int = 2_000, seed: int = 0
) -> Tuple[List[float], List[float], SCIPCache]:
    """Replay once; return (interval hit rates, ω_mru samples, the policy)."""
    policy = SCIPCache(capacity, seed=seed)
    rates: List[float] = []
    ws: List[float] = []
    hits = 0
    for i, req in enumerate(trace, 1):
        hits += policy.request(req)
        if i % interval == 0:
            rates.append(hits / interval)
            ws.append(policy.w_mru)
            hits = 0
    return rates, ws, policy


def run(scale: str = "default", interval: int = 2_000, band: float = 0.03) -> List[Dict]:
    rows: List[Dict] = []
    for name in WORKLOAD_NAMES:
        tr = get_trace(name, scale)
        cap = max(int(tr.working_set_size * CACHE_64GB_FRACTION[name]), 1)
        rates, ws, policy = trajectory(tr, cap, interval=interval)
        final = sum(rates[-3:]) / min(len(rates), 3) if rates else 0.0
        converged_at = len(rates)
        for i in range(len(rates)):
            if all(abs(r - final) <= band for r in rates[i:]):
                converged_at = i
                break
        rows.append(
            {
                "workload": name,
                "intervals": len(rates),
                "converged_requests": converged_at * interval,
                "final_hit_rate": final,
                "final_w_mru": policy.w_mru,
                "final_lambda": policy.learning_rate,
                "zro_denials": policy.zro_denials,
                "pzro_demotions": policy.pzro_demotions,
                "lr_restarts": policy.lr.restarts,
            }
        )
    return rows


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "SCIP convergence (extension)",
        rows,
        [
            "workload",
            "converged_requests",
            "final_hit_rate",
            "final_w_mru",
            "final_lambda",
            "zro_denials",
            "pzro_demotions",
            "lr_restarts",
        ],
    )
    return rows


if __name__ == "__main__":
    main()
