"""Figure 12 — SCIP as a generic enhancement of LRU-K and LRB, with ASC-IP
enhancement as the reference.

Six policies per workload: LRU-K, LRU-K-ASCIP, LRU-K-SCIP, LRB, LRB-ASCIP,
LRB-SCIP.  Paper: SCIP enhancement lowers LRU-K's average miss ratio by
8.05 points and LRB's by 0.44, exceeding ASC-IP's enhancement by 2.67 and
0.25 points respectively.

Expected shapes: X-SCIP < X for both hosts; X-SCIP ≤ X-ASCIP; the LRB
deltas are much smaller than the LRU-K deltas (a learned victim selector
leaves less on the table).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cache.lrb import LRBCache
from repro.cache.lruk import LRUKCache
from repro.core.enhance import ASCIPLRB, ASCIPLRUK, SCIPLRB, SCIPLRUK
from repro.experiments.common import (
    WARMUP_FRAC,
    CACHE_64GB_FRACTION,
    WORKLOAD_NAMES,
    get_trace,
    print_table,
)
from repro.sim.runner import run_grid

__all__ = ["run", "main", "POLICY_SET"]

POLICY_SET = {
    "LRU-K": LRUKCache,
    "LRU-K-ASCIP": ASCIPLRUK,
    "LRU-K-SCIP": SCIPLRUK,
    "LRB": LRBCache,
    "LRB-ASCIP": ASCIPLRB,
    "LRB-SCIP": SCIPLRB,
}


def run(scale: str = "default", workloads: Sequence[str] = WORKLOAD_NAMES) -> List[Dict]:
    traces = [get_trace(name, scale) for name in workloads]
    fractions = {name: [CACHE_64GB_FRACTION[name]] for name in workloads}
    factories = {name: (lambda cap, c=cls: c(cap)) for name, cls in POLICY_SET.items()}
    return run_grid(factories, traces, fractions, warmup_frac=WARMUP_FRAC)


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "Figure 12: SCIP / ASC-IP as enhancements of LRU-K and LRB",
        rows,
        ["policy", "trace", "miss_ratio", "byte_miss_ratio"],
    )
    return rows


if __name__ == "__main__":
    main()
