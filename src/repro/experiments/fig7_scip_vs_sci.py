"""Figure 7 — SCIP vs SCI: what the unified promotion policy buys.

Both policies share insertion machinery; SCI promotes every hit to MRU
(Algorithm 3) while SCIP treats hits as special missing objects.  The paper
reports SCIP below SCI by 4.62 / 1.62 / 5.30 points on CDN-T/W/A.

Because both policies are adaptive with stochastic restarts, single runs
carry regime noise of the same order as the promotion effect at our scale;
the experiment therefore averages over :data:`~repro.experiments.common.POLICY_SEEDS`
and reports the mean gap.  Reproduction target: SCIP ≤ SCI on average, with
the honest caveat (see EXPERIMENTS.md) that our synthetic P-ZRO volume
yields sub-point gaps versus the paper's 1.6–5.3 points.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List

from repro.core.sci import SCICache
from repro.core.scip import SCIPCache
from repro.experiments.common import (
    WARMUP_FRAC,
    CACHE_64GB_FRACTION,
    POLICY_SEEDS,
    WORKLOAD_NAMES,
    get_trace,
    print_table,
)
from repro.sim.engine import simulate

__all__ = ["run", "main", "PAPER_GAPS"]

#: Paper: SCIP's average miss-ratio advantage over SCI, in points.
PAPER_GAPS = {"CDN-T": 0.0462, "CDN-W": 0.0162, "CDN-A": 0.0530}


def run(scale: str = "default") -> List[Dict]:
    rows: List[Dict] = []
    for name in WORKLOAD_NAMES:
        tr = get_trace(name, scale)
        cap = max(int(tr.working_set_size * CACHE_64GB_FRACTION[name]), 1)
        warm = int(len(tr) * WARMUP_FRAC)
        scip_mrs = [
            simulate(SCIPCache(cap, seed=s), tr, warmup=warm).miss_ratio
            for s in POLICY_SEEDS
        ]
        sci_mrs = [
            simulate(SCICache(cap, seed=s), tr, warmup=warm).miss_ratio
            for s in POLICY_SEEDS
        ]
        rows.append(
            {
                "workload": name,
                "scip_miss_ratio": mean(scip_mrs),
                "sci_miss_ratio": mean(sci_mrs),
                "gap": mean(sci_mrs) - mean(scip_mrs),
                "paper_gap": PAPER_GAPS[name],
            }
        )
    return rows


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "Figure 7: SCIP vs SCI (gap > 0 means SCIP better)",
        rows,
        ["workload", "scip_miss_ratio", "sci_miss_ratio", "gap", "paper_gap"],
    )
    return rows


if __name__ == "__main__":
    main()
