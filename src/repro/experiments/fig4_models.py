"""Figure 4 — decision accuracy of six models on ZRO / P-ZRO / combined
identification.

Models (all from :mod:`repro.ml`, trained on identical features): LinReg,
LogReg, SVM, NN, GBM, and the MAB (evaluated prequentially — it keeps
learning through the evaluation stream, which is how it runs inside SCIP).

Expected shapes: every model identifies ZROs better than P-ZROs (size is
informative for misses, the future is not observable for hits); the MAB has
the best accuracy on the combined task on every workload — the paper's
justification for building SCIP on a MAB.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import (
    CACHE_64GB_FRACTION,
    WORKLOAD_NAMES,
    get_trace,
    print_table,
)
from repro.ml.evaluate import TASKS, build_dataset, evaluate_models

__all__ = ["run", "main"]


def run(scale: str = "default") -> List[Dict]:
    rows: List[Dict] = []
    for name in WORKLOAD_NAMES:
        tr = get_trace(name, scale)
        cache_bytes = max(int(tr.working_set_size * CACHE_64GB_FRACTION[name]), 1)
        for task in TASKS:
            ds = build_dataset(tr, cache_bytes, task)
            acc = evaluate_models(ds)
            row: Dict = {"workload": name, "task": task, "positives": float(ds.y.mean())}
            row.update(acc)
            rows.append(row)
    return rows


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "Figure 4: model accuracy on ZRO / P-ZRO / both",
        rows,
        ["workload", "task", "positives", "LinReg", "LogReg", "SVM", "NN", "GBM", "MAB"],
    )
    return rows


if __name__ == "__main__":
    main()
