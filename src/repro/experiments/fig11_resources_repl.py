"""Figure 11 — resource profile of SCIP vs the replacement algorithms on
CDN-T.

Expected shapes: SCIP's CPU/memory slightly above the simple heuristics
(LRU, S4LRU, GDSF) but well below the heavyweight learned policies (LRB,
GL-Cache); SCIP's TPS below plain LRU/S4LRU but above the learned class.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import CACHE_64GB_FRACTION, get_trace, print_table
from repro.experiments.fig10_replacement import POLICY_SET
from repro.perf.meters import profile_many

__all__ = ["run", "main"]


def run(scale: str = "default", workload: str = "CDN-T") -> List[Dict]:
    tr = get_trace(workload, scale)
    cap = max(int(tr.working_set_size * CACHE_64GB_FRACTION[workload]), 1)
    factories = {
        name: (lambda c, cls=cls: cls(c))
        for name, cls in POLICY_SET.items()
        if name != "Belady"
    }
    profiles = profile_many(factories, tr, cap)
    return [p.as_dict() for p in profiles.values()]


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "Figure 11: replacement-algorithm resource profile (CDN-T)",
        rows,
        ["policy", "tps", "cpu_percent", "metadata_bytes", "peak_alloc_bytes", "miss_ratio"],
    )
    return rows


if __name__ == "__main__":
    main()
