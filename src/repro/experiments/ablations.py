"""Ablations of SCIP's design choices (DESIGN.md §5).

Each ablation varies one knob of :class:`~repro.core.scip.SCIPCache` on the
CDN-T workload at the default cache size:

* ``history`` — history-list reach (the paper's "half the real cache"
  versus the lifetime-preserving reach our scaled setup needs);
* ``learning_rate`` — Algorithm 2's adaptive λ versus fixed values;
* ``unlearn`` — the random-restart threshold (paper default 10);
* ``interval`` — the UPDATELR period ``i``;
* ``escape`` — the bimodal reconciliation probability;
* ``select_mode`` — §3.1's threshold select versus Algorithm 1's literal
  Bernoulli γ-draw.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List

from repro.core.scip import SCIPCache
from repro.experiments.common import (
    CACHE_64GB_FRACTION,
    POLICY_SEEDS,
    get_trace,
    print_table,
)
from repro.sim.engine import simulate

__all__ = ["run", "main", "ABLATIONS"]


def _mr(tr, cap: int, **kwargs) -> float:
    mode = kwargs.pop("select_mode", None)
    vals = []
    for seed in POLICY_SEEDS:
        p = SCIPCache(cap, seed=seed, **kwargs)
        if mode is not None:
            p.bandit.mode = mode
        vals.append(simulate(p, tr).miss_ratio)
    return mean(vals)


#: ablation name -> list of (variant label, SCIPCache kwargs)
ABLATIONS: Dict[str, List] = {
    "interpretation": [
        ("full SCIP (default)", {}),
        ("Algorithm 1 literal (no per-object layer)", {"per_object": False}),
        ("token-blind (all H_m ghosts = ZRO)", {"use_hit_token": False}),
    ],
    "history": [
        ("hf=0.5 (paper literal)", {"history_fraction": 0.5}),
        ("hf=4", {"history_fraction": 4.0}),
        ("hf=32 (default)", {}),
        ("hf=64", {"history_fraction": 64.0}),
    ],
    "learning_rate": [
        ("adaptive (default)", {}),
        ("fixed λ=0.01", {"initial_lambda": 0.01, "update_interval": 10**9}),
        ("fixed λ=0.1", {"initial_lambda": 0.1, "update_interval": 10**9}),
        ("fixed λ=0.5", {"initial_lambda": 0.5, "update_interval": 10**9}),
    ],
    "unlearn": [
        ("unlearn=3", {"unlearn_limit": 3}),
        ("unlearn=10 (paper)", {}),
        ("unlearn=30", {"unlearn_limit": 30}),
    ],
    "interval": [
        ("i=200", {"update_interval": 200}),
        ("i=1000 (default)", {}),
        ("i=5000", {"update_interval": 5000}),
    ],
    "escape": [
        ("escape=0", {"escape": 0.0}),
        ("escape=1/8 (default)", {}),
        ("escape=1/2", {"escape": 0.5}),
    ],
    "select_mode": [
        ("threshold (§3.1, default)", {}),
        ("bernoulli (Alg. 1 SELECT)", {"select_mode": "bernoulli"}),
    ],
}


def run(scale: str = "default", workload: str = "CDN-T") -> List[Dict]:
    tr = get_trace(workload, scale)
    cap = max(int(tr.working_set_size * CACHE_64GB_FRACTION[workload]), 1)
    rows: List[Dict] = []
    for ablation, variants in ABLATIONS.items():
        for label, kwargs in variants:
            rows.append(
                {
                    "ablation": ablation,
                    "variant": label,
                    "miss_ratio": _mr(tr, cap, **kwargs),
                }
            )
    return rows


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table("SCIP design ablations (CDN-T)", rows, ["ablation", "variant", "miss_ratio"])
    return rows


if __name__ == "__main__":
    main()
