"""Figure 1 — ZRO / A-ZRO / P-ZRO / A-P-ZRO proportions and the oracle
miss-ratio reductions, across the paper's cache-size grid (0.5 %, 1 %, 5 %,
10 % of each workload's WSS).

Expected shapes (checked by the bench and tests):

* (a) ZROs are a large share of missing objects at small caches and the
  share shrinks as the cache grows;
* (b)/(e) placing labelled ZROs (resp. P-ZROs) at the LRU position reduces
  the LRU miss ratio — the slashed portion of the paper's bars;
* (c)/(f) a visible fraction of ZRO/P-ZRO events degrade to the A- variants;
* (d) CDN-W has the highest P-ZRO share of hits among the three workloads
  (paper: 21.7 % on average).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import WORKLOAD_NAMES, get_trace, print_table
from repro.traces.analysis import CACHE_SIZE_FRACTIONS, fig1_panel

__all__ = ["run", "main"]


def run(
    scale: str = "default", fractions: Sequence[float] = CACHE_SIZE_FRACTIONS
) -> List[Dict]:
    rows: List[Dict] = []
    for name in WORKLOAD_NAMES:
        tr = get_trace(name, scale)
        for r in fig1_panel(tr, fractions=fractions):
            rows.append(r.as_dict())
    return rows


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "Figure 1: ZRO / P-ZRO proportions and oracle treatment",
        rows,
        [
            "workload",
            "cache_fraction",
            "zro_share_of_misses",
            "azro_share_of_zros",
            "pzro_share_of_hits",
            "apzro_share_of_pzros",
            "miss_ratio_lru",
            "miss_ratio_treat_zro",
            "miss_ratio_treat_pzro",
            "miss_ratio_treat_both",
        ],
    )
    return rows


if __name__ == "__main__":
    main()
