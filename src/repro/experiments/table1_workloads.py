"""Table 1 — workload summary statistics.

Reproduces the paper's Table 1 for our scaled synthetic workloads: total
requests, unique objects, size extremes/mean and working-set size.  The
check is *relational*: CDN-W has by far the highest reuse (fewest objects
per request) and the largest max object size; CDN-A has the most unique
objects per request and the smallest max size; mean sizes sit in the
30–45 KB band the paper reports.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import WORKLOAD_NAMES, get_trace, print_table

__all__ = ["run", "main"]

#: Paper values for side-by-side printing.
PAPER = {
    "CDN-T": {"requests_M": 78.75, "unique_M": 24.71, "mean_KB": 44.56},
    "CDN-W": {"requests_M": 100.0, "unique_M": 2.34, "mean_KB": 35.07},
    "CDN-A": {"requests_M": 99.55, "unique_M": 54.43, "mean_KB": 31.21},
}


def run(scale: str = "default") -> List[Dict]:
    rows = []
    for name in WORKLOAD_NAMES:
        tr = get_trace(name, scale)
        s = tr.summary()
        paper = PAPER[name]
        rows.append(
            {
                "workload": name,
                "requests": s["total_requests"],
                "unique_objects": s["unique_objects"],
                "req_per_obj": s["total_requests"] / s["unique_objects"],
                "paper_req_per_obj": paper["requests_M"] / paper["unique_M"],
                "mean_size_KB": s["mean_object_size"] / 1024,
                "paper_mean_KB": paper["mean_KB"],
                "max_size_MB": s["max_object_size"] / 1e6,
                "min_size_B": s["min_object_size"],
                "wss_GB": s["working_set_size"] / 1e9,
            }
        )
    return rows


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "Table 1: workload summary",
        rows,
        [
            "workload",
            "requests",
            "unique_objects",
            "req_per_obj",
            "paper_req_per_obj",
            "mean_size_KB",
            "paper_mean_KB",
            "max_size_MB",
            "wss_GB",
        ],
    )
    return rows


if __name__ == "__main__":
    main()
