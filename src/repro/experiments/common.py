"""Shared experiment configuration.

Scaling decisions (see DESIGN.md §2 for rationale):

* **Workloads** — the three Table-1 profiles at ``n_requests`` per scale
  (the paper replays 78–100 M requests; we default to 120 k, which keeps a
  full experiment suite in CPU-minutes while preserving every structural
  property the figures measure).
* **Cache sizes** — the paper's 64/128/256 GB are absolute; relative to
  each workload's working-set size they differ per trace (64 GB is 5.8 % of
  CDN-T's WSS but 19.6 % of CDN-W's).  We preserve the *ratios between
  workloads* and anchor CDN-T's 64 GB equivalent at 2 % of WSS — the point
  of our scaled traces' miss-ratio curves that corresponds to the steep
  region the paper's Figure 1 shows its cache sizes sitting in.
* **Seeds** — every policy is seedable; experiments that compare adaptive
  policies head-to-head (Figure 7) average over ``POLICY_SEEDS``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence

from repro.sim.request import Trace
from repro.traces.cdn import make_workload

__all__ = [
    "SCALES",
    "WORKLOAD_NAMES",
    "CACHE_64GB_FRACTION",
    "cache_fractions",
    "get_trace",
    "POLICY_SEEDS",
    "print_table",
]

#: Requests per named scale.  ``smoke`` is for tests, ``bench`` for the
#: pytest-benchmark suite, ``default`` for full experiment runs.
SCALES: Dict[str, int] = {"smoke": 20_000, "bench": 100_000, "default": 150_000}

WORKLOAD_NAMES = ("CDN-T", "CDN-W", "CDN-A")

#: Fraction of each workload's WSS corresponding to the paper's 64 GB cache
#: (paper ratios: 64 GB / {1097, 327, 1580} GB, anchored at CDN-T = 2 %).
CACHE_64GB_FRACTION: Dict[str, float] = {
    "CDN-T": 0.020,
    "CDN-W": 0.068,
    "CDN-A": 0.014,
}

#: Policy seeds averaged by the head-to-head adaptive comparisons.
POLICY_SEEDS: Sequence[int] = (0, 1, 2)

#: Fraction of each trace excluded from aggregate metrics as warm-up.  The
#: paper replays 78–100 M requests, so adaptive policies' convergence is a
#: negligible prefix; at our 500×-scaled traces it is not, and measuring
#: post-warm-up restores the paper's steady-state comparison (the LRB
#: evaluation does the same).
WARMUP_FRAC: float = 0.3


def cache_fractions(workload: str, sizes: Sequence[int] = (64, 128, 256)) -> List[float]:
    """WSS fractions equivalent to the paper's absolute cache sizes (GB)."""
    base = CACHE_64GB_FRACTION[workload]
    return [base * (gb / 64) for gb in sizes]


@lru_cache(maxsize=16)
def get_trace(name: str, scale: str = "default") -> Trace:
    """Build (and memoise) one of the three workloads at a named scale."""
    try:
        n = SCALES[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; choose from {list(SCALES)}") from None
    return make_workload(name, n_requests=n)


def print_table(title: str, rows: List[dict], columns: Sequence[str]) -> None:
    """Print rows as a fixed-width table with a title banner."""
    print(f"\n=== {title} ===")
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    print("  ".join(f"{c:>{widths[c]}}" for c in columns))
    for r in rows:
        print("  ".join(f"{_fmt(r.get(c)):>{widths[c]}}" for c in columns))


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4f}"
    return str(v)
