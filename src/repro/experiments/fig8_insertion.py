"""Figure 8 — miss ratios of Belady, SCIP and the eight insertion/promotion
policies across three workloads and three cache sizes.

Comparators: LIP, DIP, PIPP, DTA, SHiP, DGIPPR, DAAIP, ASC-IP — all on LRU
victim selection, as in the paper.  Belady is the unattainable floor.

Expected shapes: Belady < SCIP ≤ every comparator; ASC-IP is the closest
comparator; LIP is among the worst (tail insertion in an object cache
forfeits nearly all residency); miss ratios fall as the cache grows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cache import POLICIES
from repro.core.scip import SCIPCache
from repro.experiments.common import (
    WARMUP_FRAC,
    WORKLOAD_NAMES,
    cache_fractions,
    get_trace,
    print_table,
)
from repro.sim.runner import run_grid

__all__ = ["run", "main", "POLICY_SET"]

#: Display name → factory for the Figure 8 policy set.
POLICY_SET = {
    "Belady": POLICIES["Belady"],
    "SCIP": SCIPCache,
    "LIP": POLICIES["LIP"],
    "DIP": POLICIES["DIP"],
    "PIPP": POLICIES["PIPP"],
    "DTA": POLICIES["DTA"],
    "SHiP": POLICIES["SHiP"],
    "DGIPPR": POLICIES["DGIPPR"],
    "DAAIP": POLICIES["DAAIP"],
    "ASC-IP": POLICIES["ASC-IP"],
}


def run(
    scale: str = "default", sizes_gb: Sequence[int] = (64, 128, 256)
) -> List[Dict]:
    traces = [get_trace(name, scale) for name in WORKLOAD_NAMES]
    fractions = {name: cache_fractions(name, sizes_gb) for name in WORKLOAD_NAMES}
    factories = {name: (lambda cap, c=cls: c(cap)) for name, cls in POLICY_SET.items()}
    return run_grid(factories, traces, fractions, warmup_frac=WARMUP_FRAC)


def main(scale: str = "default") -> List[Dict]:
    rows = run(scale)
    print_table(
        "Figure 8: insertion/promotion policies, miss ratio",
        rows,
        ["policy", "trace", "cache_fraction", "miss_ratio", "byte_miss_ratio"],
    )
    return rows


if __name__ == "__main__":
    main()
