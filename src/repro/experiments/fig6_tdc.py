"""Figure 6 / §5.2 — the TDC production deployment of SCIP.

Replays a CDN-T-profile trace through the two-layer cluster simulator with
LRU everywhere, hot-swaps SCIP at mid-trace, and reports the before/after
BTO ratio, BTO bandwidth and average user latency.

Paper reference: BTO ratio 8.87 % → 6.59 %, BTO traffic −25.7 %, latency
−26.1 %.  Our cluster is ~10⁶× smaller and runs at a higher absolute BTO
ratio, so the reproduction target is the *sign and rough relative
magnitude* of all three deltas (bandwidth and latency reductions of the
order of tens of percent).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import get_trace, print_table
from repro.tdc.deploy import run_deployment

__all__ = ["run", "main", "PAPER"]

PAPER = {
    "bto_ratio_before": 0.0887,
    "bto_ratio_after": 0.0659,
    "bto_gbps_rel_change": -0.257,
    "latency_rel_change": -0.261,
}


def run(scale: str = "default") -> Dict:
    tr = get_trace("CDN-T", scale)
    res = run_deployment(tr)
    out = res.as_dict()
    out["paper_bto_gbps_rel_change"] = PAPER["bto_gbps_rel_change"]
    out["paper_latency_rel_change"] = PAPER["latency_rel_change"]
    return out


def main(scale: str = "default") -> Dict:
    out = run(scale)
    rows = [
        {
            "metric": "BTO ratio",
            "before": out["before_bto_ratio"],
            "after": out["after_bto_ratio"],
            "rel_change": (out["after_bto_ratio"] - out["before_bto_ratio"])
            / max(out["before_bto_ratio"], 1e-9),
            "paper_rel": (PAPER["bto_ratio_after"] - PAPER["bto_ratio_before"])
            / PAPER["bto_ratio_before"],
        },
        {
            "metric": "BTO bandwidth (Gbps)",
            "before": out["before_bto_gbps"],
            "after": out["after_bto_gbps"],
            "rel_change": out["bto_gbps_rel_change"],
            "paper_rel": PAPER["bto_gbps_rel_change"],
        },
        {
            "metric": "avg latency (ms)",
            "before": out["before_latency_ms"],
            "after": out["after_latency_ms"],
            "rel_change": out["latency_rel_change"],
            "paper_rel": PAPER["latency_rel_change"],
        },
    ]
    print_table(
        "Figure 6 / §5.2: TDC deployment (LRU → SCIP at mid-trace)",
        rows,
        ["metric", "before", "after", "rel_change", "paper_rel"],
    )
    return out


if __name__ == "__main__":
    main()
