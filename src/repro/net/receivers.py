"""Zipf-rated receivers: millions of users, folded into request rates.

A cache network is driven from its leaves.  Rather than simulate users
individually, icarus-style evaluations attach *receivers* to edge nodes
and give them Zipf-distributed request **rates** (the *beta* skew): a few
metro PoPs carry most of the traffic, a long tail of small ones carries
the rest.  :class:`ZipfReceivers` implements that as a deterministic,
stateless assignment — request ``i`` of the trace belongs to receiver
``assign(i)``, drawn from the rate distribution by hashing the request
index (splitmix64, seeded), so the same trace + seed always produces the
same per-edge substreams, with no per-request RNG state to carry.

The module also answers the capacity-planning question the assignment
creates: *what working set does each edge actually see?*  A receiver's
WSS is not ``trace WSS / n`` — hot objects are requested at many edges
and the skew concentrates traffic — so :func:`receiver_wss` runs one
SHARDS-style spatially-sampled distinct-(key→size) estimator per
receiver (bounded memory, streaming) and scales the sampled byte sums
back up.  ``repro trace info --receivers N`` and ``net-bench`` surface
these numbers so per-tier capacity choices are defensible rather than
folklore.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.traces.binfmt import _ShardsSampler, _splitmix64
from repro.traces.synthetic import zipf_probs

__all__ = ["ZipfReceivers", "receiver_wss", "receiver_wss_from_bin"]

_U64 = np.uint64


class ZipfReceivers:
    """``n`` receivers with Zipf(``beta``) request rates.

    ``beta=0`` makes all receivers equal; icarus evaluations typically
    use 0.6–0.9.  ``assign`` is O(log n) (binary search over the rate
    CDF) and purely a function of ``(index, seed)``.
    """

    def __init__(self, n: int, beta: float = 0.8, seed: int = 0):
        if n < 1:
            raise ValueError(f"need at least one receiver, got {n}")
        if beta < 0:
            raise ValueError(f"beta must be >= 0, got {beta}")
        self.n = int(n)
        self.beta = float(beta)
        self.seed = int(seed)
        if beta == 0.0:
            self.rates = np.full(self.n, 1.0 / self.n)
        else:
            self.rates = zipf_probs(self.n, beta)
        self._cdf = np.cumsum(self.rates)
        self._cdf[-1] = 1.0  # guard the float tail
        self._salt = _U64(
            int(
                _splitmix64(
                    np.array([self.seed ^ 0x7265637672735F5A], dtype=np.uint64)
                )[0]
            )
        )

    def assign(self, index: int) -> int:
        """Receiver id for request ``index`` (deterministic)."""
        h = _splitmix64(np.array([index], dtype=np.uint64) ^ self._salt)
        u = float(h[0]) / 2.0**64
        return int(np.searchsorted(self._cdf, u, side="right"))

    def assign_array(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`assign` over an int64/uint64 index array."""
        h = _splitmix64(indices.astype(np.int64).view(np.uint64) ^ self._salt)
        u = h.astype(np.float64) / 2.0**64
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def as_dict(self) -> dict:
        return {"n": self.n, "beta": self.beta, "seed": self.seed}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ZipfReceivers(n={self.n}, beta={self.beta}, seed={self.seed})"


def receiver_wss(
    chunks: Iterable[Tuple[np.ndarray, np.ndarray]],
    receivers: ZipfReceivers,
    start_index: int = 0,
) -> List[dict]:
    """Per-receiver SHARDS-estimated request counts and working sets.

    ``chunks`` yields ``(keys, sizes)`` array pairs in trace order (any
    chunking); ``start_index`` is the global index of the first request.
    Returns one row per receiver::

        {"receiver": i, "rate": r_i, "requests": n_i,
         "unique_estimate": ..., "wss_estimate": ...}

    Memory is bounded per receiver by the SHARDS sampler cap regardless
    of trace length, so this streams paper-scale ``.bin`` files.
    """
    samplers = [_ShardsSampler() for _ in range(receivers.n)]
    counts = [0] * receivers.n
    offset = start_index
    for keys, sizes in chunks:
        n = len(keys)
        idx = np.arange(offset, offset + n, dtype=np.int64)
        offset += n
        who = receivers.assign_array(idx)
        for r in np.unique(who).tolist():
            mask = who == r
            counts[r] += int(mask.sum())
            samplers[r].update(np.asarray(keys)[mask], np.asarray(sizes)[mask])
    return [
        {
            "receiver": i,
            "rate": float(receivers.rates[i]),
            "requests": counts[i],
            "unique_estimate": samplers[i].unique_estimate(),
            "wss_estimate": samplers[i].wss_estimate(),
        }
        for i in range(receivers.n)
    ]


def receiver_wss_from_bin(
    path,
    n_receivers: int,
    beta: float = 0.8,
    seed: int = 0,
    chunk_size: int = 1 << 20,
    receivers: Optional[ZipfReceivers] = None,
) -> List[dict]:
    """:func:`receiver_wss` over a ``.bin`` trace file, streaming."""
    from repro.traces.binfmt import BinTraceReader

    rx = receivers if receivers is not None else ZipfReceivers(
        n_receivers, beta=beta, seed=seed
    )
    with BinTraceReader(path) as reader:
        return receiver_wss(
            ((keys, sizes) for _, keys, sizes in reader.iter_chunks(chunk_size)),
            rx,
        )


def receiver_wss_from_trace(
    trace,
    receivers: ZipfReceivers,
    chunk_size: int = 1 << 16,
) -> List[dict]:
    """:func:`receiver_wss` over an in-memory request sequence."""
    requests = getattr(trace, "requests", trace)

    def chunks():
        for lo in range(0, len(requests), chunk_size):
            block = requests[lo : lo + chunk_size]
            yield (
                np.fromiter((r.key for r in block), dtype=np.int64, count=len(block)),
                np.fromiter((r.size for r in block), dtype=np.int64, count=len(block)),
            )

    return receiver_wss(chunks(), receivers)


def _edge_population(rows: List[dict], receivers: ZipfReceivers, n_edges: int) -> Dict[int, dict]:
    """Aggregate receiver rows onto edges (receiver ``r`` -> edge
    ``r % n_edges``, the engine's attachment rule).  Union WSS cannot be
    recovered from per-receiver samples exactly, so the edge estimate is
    the max-single-receiver lower bound and the summed upper bound."""
    out: Dict[int, dict] = {}
    for row in rows:
        e = row["receiver"] % n_edges
        agg = out.setdefault(
            e, {"edge_index": e, "requests": 0, "rate": 0.0, "wss_upper": 0, "wss_lower": 0}
        )
        agg["requests"] += row["requests"]
        agg["rate"] += row["rate"]
        agg["wss_upper"] += row["wss_estimate"]
        agg["wss_lower"] = max(agg["wss_lower"], row["wss_estimate"])
    return out
