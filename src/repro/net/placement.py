"""On-path placement strategies: who keeps a copy on the way back down.

When a request misses at the edge and is served from an upstream cache
(or the origin), the response traverses the same path back.  The
*placement strategy* decides which of the downstream caches admit a copy
— the question Gallo et al. and the icarus ``onpath`` strategies study,
and the one knob the tiered bench varies while holding topology,
capacities and policies fixed.

The engine hands a strategy the **downstream path** — the cache nodes
between the serving point and the requesting edge, ordered top (nearest
the server) to bottom (the edge itself) — and gets back the subset that
should admit.  What "admit" *means* at a node is that node's own
insertion policy (SCIP's bandit, LRU's MRU push, …): placement decides
*where copies land*, the per-node policy decides *how* and *what gets
evicted for them*, which is exactly the paper-vs-network separation of
concerns.

Built-ins:

``LCE`` (leave-copy-everywhere)
    Every downstream cache admits.  The classic default — and the
    write-on-miss behaviour of :class:`repro.tdc.cluster.TDCCluster`,
    which the cross-validation test pins.
``LCD`` (leave-copy-down)
    Only the cache *immediately below* the serving point admits.  An
    object must be requested once per tier to migrate one tier closer to
    the users — repeated demand pulls hot objects edge-ward, one-hit
    wonders never pollute the edge.
``PROB`` (ProbCache-style probabilistic)
    Each downstream cache admits with probability ``p · d / L`` where
    ``d`` is its 1-based depth below the serving point and ``L`` the
    downstream path length — copies concentrate toward the edge, like
    ProbCache's ``TimesIn`` weighting, without LCD's one-tier-per-request
    latency.  Decisions are a splitmix64 hash of (key, node, request
    clock, seed): deterministic replay, independent across requests.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Sequence

__all__ = [
    "PlacementStrategy",
    "LCE",
    "LCD",
    "ProbPlacement",
    "available_placements",
    "make_placement",
    "register_placement",
]

_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    x &= _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x


class PlacementStrategy:
    """Base class: subclasses override :meth:`copy_nodes`.

    Parameters handed to :meth:`copy_nodes`:

    ``downstream``
        Cache-node names between the serving point and the requesting
        edge, ordered top → bottom; ``downstream[-1]`` is the edge.
        Dead (fault-killed) nodes are already filtered out.
    ``key`` / ``size``
        The object being placed.
    ``clock``
        The engine's request counter — lets probabilistic strategies
        make independent, reproducible per-request decisions.
    """

    name: str = "abstract"

    def copy_nodes(
        self, downstream: Sequence[str], key: int, size: int, clock: int
    ) -> List[str]:
        raise NotImplementedError

    def as_dict(self) -> dict:
        """Manifest representation; subclasses append scalar knobs."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class LCE(PlacementStrategy):
    """Leave-copy-everywhere: every downstream cache admits."""

    name = "LCE"

    def copy_nodes(
        self, downstream: Sequence[str], key: int, size: int, clock: int
    ) -> List[str]:
        return list(downstream)


class LCD(PlacementStrategy):
    """Leave-copy-down: only the cache just below the serving point."""

    name = "LCD"

    def copy_nodes(
        self, downstream: Sequence[str], key: int, size: int, clock: int
    ) -> List[str]:
        return [downstream[0]] if downstream else []


class ProbPlacement(PlacementStrategy):
    """Edge-weighted probabilistic placement (ProbCache-flavoured).

    Node at depth ``d`` of ``L`` downstream caches admits with
    probability ``p * d / L`` — the edge itself sees probability ``p``,
    caches near the serving point proportionally less.  ``p=1`` makes the
    edge behave like LCE while still thinning the middle tiers.
    """

    name = "PROB"

    def __init__(self, p: float = 0.7, seed: int = 0):
        if not 0.0 < p <= 1.0:
            raise ValueError(f"placement probability must be in (0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)
        self._salt = _mix64(self.seed ^ 0x70726F62636163)  # "probcac"

    def copy_nodes(
        self, downstream: Sequence[str], key: int, size: int, clock: int
    ) -> List[str]:
        total = len(downstream)
        if not total:
            return []
        out: List[str] = []
        base = _mix64(key ^ self._salt) ^ _mix64(clock + 0x9E3779B97F4A7C15)
        for depth, node in enumerate(downstream, start=1):
            threshold = int(self.p * depth / total * (1 << 64))
            h = _mix64(base ^ zlib.crc32(node.encode()))
            if h < threshold:
                out.append(node)
        return out

    def as_dict(self) -> dict:
        return {"name": self.name, "p": self.p, "seed": self.seed}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProbPlacement(p={self.p}, seed={self.seed})"


#: name -> factory, mirroring the cache-policy registry idiom.
_PLACEMENTS: Dict[str, Callable[..., PlacementStrategy]] = {
    "LCE": LCE,
    "LCD": LCD,
    "PROB": ProbPlacement,
}


def available_placements() -> tuple:
    """Sorted names of every registered placement strategy."""
    return tuple(sorted(_PLACEMENTS))


def make_placement(name: str, **kwargs) -> PlacementStrategy:
    """Instantiate a placement strategy by registry name."""
    try:
        factory = _PLACEMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown placement {name!r}; available: {list(available_placements())}"
        ) from None
    return factory(**kwargs)


def register_placement(
    name: str, factory: Callable[..., PlacementStrategy], replace: bool = False
) -> None:
    """Register an additional strategy (plugins, tests)."""
    if not replace and name in _PLACEMENTS:
        raise ValueError(f"placement {name!r} already registered")
    _PLACEMENTS[name] = factory
