"""repro.net: multi-tier cache networks with on-path placement.

The paper evaluates SCIP on single caches; this package puts policies in
*networks* — edge PoPs in front of regional tiers in front of origin —
where placement strategy and per-tier policy choice interact (see
``docs/net_design.md``).

* :mod:`repro.net.topology` — the cache graph (nodes, links, builders)
* :mod:`repro.net.placement` — LCE / LCD / probabilistic on-path placement
* :mod:`repro.net.receivers` — Zipf-rated receivers + per-receiver WSS
* :mod:`repro.net.engine` — the trace-replay engine
* :mod:`repro.net.bench` — ``repro net-bench`` and ``BENCH_net.json``
"""

from repro.net.engine import NetEngine, NetResult
from repro.net.placement import (
    LCD,
    LCE,
    PlacementStrategy,
    ProbPlacement,
    available_placements,
    make_placement,
    register_placement,
)
from repro.net.receivers import (
    ZipfReceivers,
    receiver_wss,
    receiver_wss_from_bin,
    receiver_wss_from_trace,
)
from repro.net.topology import (
    ORIGIN,
    Link,
    NetNode,
    Topology,
    fat_tree_topology,
    tree_topology,
)

__all__ = [
    "ORIGIN",
    "Link",
    "NetNode",
    "Topology",
    "tree_topology",
    "fat_tree_topology",
    "PlacementStrategy",
    "LCE",
    "LCD",
    "ProbPlacement",
    "available_placements",
    "make_placement",
    "register_placement",
    "ZipfReceivers",
    "receiver_wss",
    "receiver_wss_from_bin",
    "receiver_wss_from_trace",
    "NetEngine",
    "NetResult",
]
