"""NetEngine: trace replay over a cache network with on-path placement.

The engine materialises one cache policy per :class:`~repro.net.topology.
NetNode` (via the unified registry), attaches Zipf-rated receivers to the
topology's edge nodes, and replays a trace one request at a time:

1. **Route.**  The request's receiver (``ZipfReceivers.assign`` of the
   request index) picks an edge node; :meth:`Topology.path` gives the
   deterministic uplink chain to ``origin``.
2. **Lookup walk** (bottom → top).  At each *live* cache node the engine
   asks ``policy.contains(key)`` — a pure lookup, no admission side
   effects.  The first hit is the serving point; a hit calls
   ``policy.request(req)`` there so the policy counts it and applies its
   own promotion logic (SCIP's smart promotion, LRU's MRU move, …).
   Nothing below origin hit ⇒ origin fetch.
3. **Placement walk** (top → bottom).  The response retraces the path;
   the :class:`~repro.net.placement.PlacementStrategy` picks which
   downstream caches admit a copy, and admission at a chosen node is that
   node's own ``policy.request(req)`` — so SCIP's *insertion* bandit
   decides MRU/LRU entry exactly as it would on a single cache.
4. **Latency.**  Each link traversed costs ``latency_ms`` up,
   ``latency_ms + transfer_ms(size)`` down; an edge hit is free.  A
   ``slow`` fault adds its extra latency at every lookup on the degraded
   node.  With no slow faults the request latency is exactly the sum of
   its per-hop costs — a property the span tags pin
   (``net_hop`` spans carry ``sim_ms``).

Faults come from the cluster layer's :class:`~repro.cluster.faults.
FaultPlan`, consumed by request offset.  A **killed** node is transparent:
requests pay the hops through it but skip its lookup and never place
copies there; its cache state is discarded on kill and rebuilt cold on
restart.  Every request is always served — worst case from origin — so
the served-error rate of a PoP-kill scenario is 0 by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.cache.registry import make_policy
from repro.cluster.faults import FaultPlan
from repro.net.placement import PlacementStrategy, make_placement
from repro.net.receivers import ZipfReceivers
from repro.net.topology import ORIGIN, Topology
from repro.sim.request import Request

__all__ = ["NetEngine", "NetResult"]


@dataclass
class NetResult:
    """Aggregate outcome of one :meth:`NetEngine.run` replay."""

    requests: int = 0
    cache_hits: int = 0
    origin_fetches: int = 0
    copies_placed: int = 0
    errors: int = 0
    latency_ms_sum: float = 0.0
    hop_latency_ms_sum: float = 0.0
    #: per-tier engine-side accounting: every request is counted at each
    #: tier its lookup walk reaches, so ``hits / lookups`` is that tier's
    #: local hit ratio with the same denominators ``repro.tdc`` uses.
    tiers: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: 1 where the request was served from *some* cache (any tier) — the
    #: windowed series the PoP-kill dip metrics are computed from.
    hit_flags: bytearray = field(default_factory=bytearray)

    @property
    def hit_ratio(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_ms_sum / self.requests if self.requests else 0.0

    def tier_miss_ratios(self) -> Dict[str, float]:
        """Local miss ratio per tier (misses over lookups *at* that tier)."""
        out = {}
        for tier, st in sorted(self.tiers.items()):
            lookups = st["lookups"]
            out[tier] = (lookups - st["hits"]) / lookups if lookups else 0.0
        return out

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "hit_ratio": self.hit_ratio,
            "origin_fetches": self.origin_fetches,
            "copies_placed": self.copies_placed,
            "errors": self.errors,
            "mean_latency_ms": self.mean_latency_ms,
            "tier_miss_ratios": self.tier_miss_ratios(),
            "tiers": {t: dict(st) for t, st in sorted(self.tiers.items())},
        }


class NetEngine:
    """Replay traffic over a :class:`Topology` with a placement strategy.

    Parameters
    ----------
    topology:
        The (validated) cache graph; policies are materialised from its
        per-node ``policy`` / ``policy_kwargs`` via the unified registry.
    placement:
        A :class:`PlacementStrategy` instance or a registry name
        (``"LCE"`` / ``"LCD"`` / ``"PROB"``).
    receivers:
        A :class:`ZipfReceivers` population, or ``None`` for a single
        receiver on the first edge.  Receiver ``r`` attaches to edge
        ``edge_nodes[r % n_edges]``.
    fault_plan:
        Optional :class:`FaultPlan` consumed by request offset; unknown
        node names are ignored (the never-raise pin).
    registry:
        Optional :class:`repro.obs.metrics.MetricsRegistry`; per-tier
        lookup/hit/byte counters and the latency histogram land there.
    probe:
        Optional :class:`repro.obs.probe.Probe` for ``net_*`` events.
    tracer:
        Optional :class:`repro.obs.span.Tracer`; when set, every request
        gets a ``request`` root with ``net_hop`` / ``tier_lookup`` /
        ``placement`` children whose ``sim_ms`` tags carry the simulated
        latency model (wall time on spans is meaningless here).
    """

    def __init__(
        self,
        topology: Topology,
        placement: Union[str, PlacementStrategy] = "LCE",
        receivers: Optional[ZipfReceivers] = None,
        fault_plan: Optional[FaultPlan] = None,
        registry=None,
        probe=None,
        tracer=None,
    ):
        topology.validate()
        self.topology = topology
        self.placement = (
            placement
            if isinstance(placement, PlacementStrategy)
            else make_placement(placement)
        )
        self.receivers = receivers
        self.fault_plan = fault_plan
        self.registry = registry
        self.probe = probe
        self.tracer = tracer

        self.policies: Dict[str, object] = {
            name: make_policy(node.policy, node.capacity, **node.policy_kwargs)
            for name, node in topology.nodes.items()
        }
        self._tier = {name: node.tier for name, node in topology.nodes.items()}
        self.edges: List[str] = topology.edge_nodes
        self.dead: set = set()
        self.slow_ms: Dict[str, float] = {}
        self.clock = 0
        self.result = NetResult(
            tiers={
                tier: {"lookups": 0, "hits": 0, "hit_bytes": 0, "lookup_bytes": 0}
                for tier in topology.tiers()
            }
        )
        if registry is not None:
            self._c_lookups = {
                t: registry.counter("net_tier_lookups", tier=t)
                for t in topology.tiers()
            }
            self._c_hits = {
                t: registry.counter("net_tier_hits", tier=t) for t in topology.tiers()
            }
            self._c_hit_bytes = {
                t: registry.counter("net_tier_hit_bytes", tier=t)
                for t in topology.tiers()
            }
            self._c_origin = registry.counter("net_origin_fetches")
            self._c_copies = registry.counter("net_copies_placed")
            self._h_latency = registry.histogram("net_request_latency_ms")
        else:
            self._h_latency = None

    # -- faults ------------------------------------------------------------
    def _apply_faults(self, offset: int) -> None:
        plan = self.fault_plan
        if plan is None or plan.exhausted:
            return
        for act in plan.due(offset):
            node = act.node
            if node not in self.policies and node not in self.dead:
                continue  # unknown node: the plan never raises
            if act.kind == "kill":
                self.dead.add(node)
                spec = self.topology.nodes[node]
                # crash semantics: state is gone the moment it dies
                self.policies[node] = make_policy(
                    spec.policy, spec.capacity, **spec.policy_kwargs
                )
                if self.probe is not None:
                    self.probe.emit("net_node_down", node=node, t=offset)
            elif act.kind == "restart":
                self.dead.discard(node)
                if self.probe is not None:
                    self.probe.emit("net_node_up", node=node, t=offset)
            elif act.kind == "slow":
                self.slow_ms[node] = act.extra_latency_s * 1e3
            elif act.kind == "recover":
                self.slow_ms.pop(node, None)

    # -- the per-request walk ---------------------------------------------
    def serve(self, req: Request) -> float:
        """Serve one request; returns its simulated latency in ms."""
        index = self.clock
        self.clock += 1
        self._apply_faults(index)
        res = self.result
        res.requests += 1

        if self.receivers is not None:
            receiver = self.receivers.assign(index)
            edge = self.edges[receiver % len(self.edges)]
        else:
            receiver = 0
            edge = self.edges[0]

        key, size = req.key, req.size
        links = self.topology.path(edge, key)
        nodes = [edge] + [link.dst for link in links]  # ends with ORIGIN

        root = None
        if self.tracer is not None:
            root = self.tracer.start_trace("request", edge=edge, receiver=receiver)

        latency = 0.0
        hop_latency = 0.0
        serving_index = None  # position in `nodes` that served the request
        slow = self.slow_ms
        try:
            for i, name in enumerate(nodes):
                if name == ORIGIN:
                    serving_index = i
                    res.origin_fetches += 1
                    if self.registry is not None:
                        self._c_origin.inc()
                    if self.probe is not None:
                        self.probe.emit(
                            "net_origin_fetch", key=key, size=size, edge=edge, t=index
                        )
                    break
                if name in self.dead:
                    continue
                if slow and name in slow:
                    latency += slow[name]
                tier = self._tier[name]
                st = res.tiers[tier]
                st["lookups"] += 1
                st["lookup_bytes"] += size
                policy = self.policies[name]
                hit = policy.contains(key)
                if root is not None:
                    span = root.child("tier_lookup", node=name, tier=tier)
                    span.end(sim_ms=slow.get(name, 0.0), hit=hit)
                if self.registry is not None:
                    self._c_lookups[tier].inc()
                if hit:
                    policy.request(req)  # count + promote at the hit node
                    st["hits"] += 1
                    st["hit_bytes"] += size
                    if self.registry is not None:
                        self._c_hits[tier].inc()
                        self._c_hit_bytes[tier].inc(size)
                    if self.probe is not None:
                        self.probe.emit(
                            "net_tier_hit",
                            key=key,
                            size=size,
                            node=name,
                            tier=tier,
                            t=index,
                        )
                    serving_index = i
                    res.cache_hits += 1
                    break
            res.hit_flags.append(1 if nodes[serving_index] != ORIGIN else 0)

            # latency: up to the serving point and back down, per link
            for link in links[:serving_index]:
                cost = 2.0 * link.latency_ms + link.transfer_ms(size)
                hop_latency += cost
                if root is not None:
                    span = root.child("net_hop", src=link.src, dst=link.dst)
                    span.end(sim_ms=cost)
            latency += hop_latency

            # placement: live caches strictly below the serving point,
            # top -> bottom (the response's direction of travel)
            downstream = [
                n
                for n in nodes[serving_index - 1 :: -1]
                if n not in self.dead
            ] if serving_index else []
            placed = 0
            if downstream:
                copies = self.placement.copy_nodes(downstream, key, size, index)
                for name in copies:
                    self.policies[name].request(req)  # node's own admission
                    placed += 1
                res.copies_placed += placed
                if self.registry is not None and placed:
                    self._c_copies.inc(placed)
                if self.probe is not None:
                    self.probe.emit(
                        "net_placement",
                        key=key,
                        size=size,
                        strategy=self.placement.name,
                        offered=len(downstream),
                        placed=placed,
                        t=index,
                    )
            if root is not None:
                span = root.child("placement", strategy=self.placement.name)
                span.end(sim_ms=0.0, placed=placed)
        except Exception:
            res.errors += 1
            if root is not None:
                root.end(status="error")
            raise
        res.latency_ms_sum += latency
        res.hop_latency_ms_sum += hop_latency
        if self._h_latency is not None:
            self._h_latency.observe(latency)
        if root is not None:
            root.end(sim_ms=latency, status="ok")
        return latency

    # -- replay drivers ----------------------------------------------------
    def run(self, trace) -> NetResult:
        """Replay an in-memory trace (a ``Trace`` or request iterable)."""
        for req in getattr(trace, "requests", trace):
            self.serve(req)
        return self.result

    def run_bin(self, path, chunk_size: int = 1 << 20) -> NetResult:
        """Stream a ``.bin`` trace through the engine chunk by chunk."""
        from repro.traces.binfmt import BinTraceReader

        with BinTraceReader(path) as reader:
            for times, keys, sizes in reader.iter_chunks(chunk_size):
                t_list = times.tolist()
                k_list = keys.tolist()
                s_list = sizes.tolist()
                for t, k, s in zip(t_list, k_list, s_list):
                    self.serve(Request(t, k, s))
        return self.result

    # -- introspection -----------------------------------------------------
    def policy_stats(self, node: str):
        """The live policy object for ``node`` (its own hit/miss counts)."""
        return self.policies[node]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NetEngine({self.topology!r}, placement={self.placement.name}, "
            f"served={self.result.requests})"
        )
