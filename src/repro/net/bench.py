"""``repro net-bench`` — placement × edge-policy over a 3-tier CDN tree.

Every scenario replays the **same** trace through the **same** topology
shape at the **same** total cache capacity; only two things vary — the
edge tier's policy (the paper's SCIP against LRU and GDSF heuristics)
and the on-path placement strategy (LCE / LCD / probabilistic).  What the
grid shows is the interaction the single-cache benches cannot: LCE burns
edge capacity on one-hit wonders duplicated at every tier, while LCD and
probabilistic placement filter what reaches the edge — the same
admission-quality question SCIP answers *inside* a cache, posed at the
network level.

A PoP-kill scenario then reruns the best grid cell under a
:class:`~repro.cluster.faults.FaultPlan` that kills the busiest edge PoP
mid-trace and restarts it cold, reading dip depth / recovery off the
windowed hit-ratio series exactly like ``BENCH_cluster.json`` does, and
asserting the network's graceful-degradation invariant: the served-error
rate stays 0 because origin always answers.

``BENCH_net.json`` (schema :data:`NET_BENCH_SCHEMA`) embeds a run
manifest whose ``extra.net`` block holds the full bench configuration;
:func:`config_from_doc` rebuilds the keyword set so the artifact is
reproducible by itself.  The doc also carries per-edge SHARDS working-set
estimates for the receiver population, so the capacity choices are
checkable numbers rather than folklore.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.cluster.bench import _dip_metrics, _window_series
from repro.cluster.faults import FaultPlan
from repro.net.engine import NetEngine
from repro.net.placement import make_placement
from repro.net.receivers import ZipfReceivers, receiver_wss_from_trace
from repro.net.topology import tree_topology
from repro.obs.manifest import build_manifest
from repro.traces.cdn import make_workload

__all__ = [
    "NET_BENCH_SCHEMA",
    "run_net_bench",
    "config_from_doc",
    "format_net_doc",
    "write_net_doc",
]

#: Version of the ``BENCH_net.json`` layout; bump on breaking changes.
NET_BENCH_SCHEMA = 1


def _tier_capacities(
    wss: int,
    fraction: float,
    branching: Sequence[int],
    tier_ratios: Sequence[float],
) -> List[int]:
    """Split ``wss * fraction`` total bytes across tiers.

    ``tier_ratios`` weight the *tier totals* (edge first); the per-node
    capacity divides a tier's total by its node count, so one regional
    cache is individually bigger than one edge cache even at a 1:1 tier
    ratio.  Every scenario shares the result — equal total capacity is
    what makes the latency comparison fair.
    """
    counts = []
    n = 1
    for b in reversed(branching):
        n *= b
    for level in range(len(branching) + 1):
        counts.append(n)
        if level < len(branching):
            n //= branching[level]
    total = max(int(wss * fraction), sum(counts))
    weight = sum(tier_ratios)
    return [
        max(int(total * ratio / weight) // count, 1)
        for ratio, count in zip(tier_ratios, counts)
    ]


def _edge_wss(rows: List[dict], n_edges: int) -> List[dict]:
    """Fold per-receiver WSS rows onto edges (receiver ``r`` drives edge
    ``r % n_edges``).  Union WSS is not recoverable from independent
    samples, so report the summed upper bound alongside the max-receiver
    lower bound."""
    edges: Dict[int, dict] = {}
    for row in rows:
        e = row["receiver"] % n_edges
        agg = edges.setdefault(
            e,
            {
                "edge": f"edge{e}",
                "receivers": 0,
                "requests": 0,
                "rate": 0.0,
                "wss_upper_bytes": 0,
                "wss_lower_bytes": 0,
            },
        )
        agg["receivers"] += 1
        agg["requests"] += row["requests"]
        agg["rate"] += row["rate"]
        agg["wss_upper_bytes"] += row["wss_estimate"]
        agg["wss_lower_bytes"] = max(agg["wss_lower_bytes"], row["wss_estimate"])
    out = [edges[e] for e in sorted(edges)]
    for row in out:
        row["rate"] = round(row["rate"], 6)
    return out


def _run_scenario(
    trace,
    capacities: Sequence[int],
    branching: Sequence[int],
    edge_policy: str,
    upper_policy: str,
    placement: str,
    prob_p: float,
    receivers: ZipfReceivers,
    seed: int,
    fault_plan: Optional[FaultPlan] = None,
    window: Optional[int] = None,
    kill_at: Optional[int] = None,
) -> dict:
    topo = tree_topology(
        branching=branching,
        capacities=capacities,
        policies=(edge_policy,) + (upper_policy,) * len(branching),
        seed=seed,
    )
    strategy = (
        make_placement(placement, p=prob_p, seed=seed)
        if placement == "PROB"
        else make_placement(placement)
    )
    engine = NetEngine(
        topo, placement=strategy, receivers=receivers, fault_plan=fault_plan
    )
    unhandled = 0
    try:
        res = engine.run(trace)
    except Exception:  # pragma: no cover - the never-raise pin
        unhandled = 1
        res = engine.result
    doc = res.as_dict()
    doc["edge_policy"] = edge_policy
    doc["placement"] = strategy.as_dict()
    doc["served_error_rate"] = res.errors / res.requests if res.requests else 0.0
    doc["unhandled_exceptions"] = unhandled
    if fault_plan is not None and window and kill_at is not None:
        series = _window_series(res.hit_flags, window)
        doc["window"] = window
        doc["hit_ratio_series"] = [round(r, 4) for r in series]
        doc.update(_dip_metrics(series, window, kill_at))
    return doc


def run_net_bench(
    trace: str = "CDN-T",
    n_requests: int = 120_000,
    branching: Sequence[int] = (4, 2),
    fraction: float = 0.15,
    tier_ratios: Sequence[float] = (1.0, 1.0, 2.0),
    edge_policies: Sequence[str] = ("LRU", "GDSF", "SCIP"),
    upper_policy: str = "LRU",
    placements: Sequence[str] = ("LCE", "LCD", "PROB"),
    prob_p: float = 0.7,
    n_receivers: int = 32,
    receiver_beta: float = 0.8,
    kill_frac: float = 0.4,
    restart_frac: float = 0.7,
    window: int = 2_000,
    seed: int = 0,
    output: Optional[str] = "BENCH_net.json",
    quick: bool = False,
) -> dict:
    """Run the placement × edge-policy grid plus the PoP-kill scenario.

    The grid holds the tree shape, per-tier capacities, upper-tier policy
    and receiver population fixed; each cell is one
    ``(edge policy, placement)`` pair on the identical request stream.
    The PoP-kill scenario reruns the lowest-latency cell with the busiest
    edge PoP killed at ``kill_frac`` and restarted cold at
    ``restart_frac`` of the trace.
    """
    if quick:
        n_requests = min(n_requests, 24_000)
        window = min(window, 1_000)
    tr = make_workload(trace, n_requests=n_requests, seed=seed)
    n = len(tr.requests)
    capacities = _tier_capacities(
        tr.working_set_size, fraction, branching, tier_ratios
    )
    rx = ZipfReceivers(n_receivers, beta=receiver_beta, seed=seed)
    n_edges = 1
    for b in branching:
        n_edges *= b

    # Per-edge working sets (SHARDS-estimated): the defensibility check
    # for the edge capacity choice, and the victim selector for the kill.
    wss_rows = receiver_wss_from_trace(tr, rx)
    edge_wss = _edge_wss(wss_rows, n_edges)
    victim = max(edge_wss, key=lambda row: row["requests"])["edge"]

    scenarios = {}
    for policy in edge_policies:
        for placement in placements:
            scenarios[f"{policy}+{placement}"] = _run_scenario(
                tr,
                capacities,
                branching,
                policy,
                upper_policy,
                placement,
                prob_p,
                rx,
                seed,
            )

    best = min(scenarios, key=lambda name: scenarios[name]["mean_latency_ms"])
    kill_at, restart_at = int(n * kill_frac), int(n * restart_frac)
    best_policy, best_placement = best.split("+")
    popkill = _run_scenario(
        tr,
        capacities,
        branching,
        best_policy,
        upper_policy,
        best_placement,
        prob_p,
        rx,
        seed,
        fault_plan=FaultPlan().kill(victim, at=kill_at).restart(victim, at=restart_at),
        window=window,
        kill_at=kill_at,
    )
    popkill["victim"] = victim
    popkill["grid_cell"] = best

    bench_config = {
        "trace": trace,
        "n_requests": n_requests,
        "branching": list(branching),
        "fraction": fraction,
        "tier_ratios": list(tier_ratios),
        "edge_policies": list(edge_policies),
        "upper_policy": upper_policy,
        "placements": list(placements),
        "prob_p": prob_p,
        "n_receivers": n_receivers,
        "receiver_beta": receiver_beta,
        "kill_frac": kill_frac,
        "restart_frac": restart_frac,
        "window": window,
        "seed": seed,
        # derived (recomputed on replay, recorded for the reader):
        "capacities": capacities,
        "total_capacity_bytes": _grid_total_capacity(capacities, branching),
        "victim": victim,
        "kill_at": kill_at,
        "restart_at": restart_at,
    }
    manifest = build_manifest(trace=tr, seed=seed, extra={"net": bench_config})
    doc = {
        "schema": NET_BENCH_SCHEMA,
        "config": bench_config,
        "edge_wss": edge_wss,
        "scenarios": scenarios,
        "popkill": popkill,
        "comparison": _compare(scenarios, popkill, edge_policies, placements),
        "manifest": manifest,
    }
    if output:
        write_net_doc(doc, output)
    return doc


def _grid_total_capacity(
    capacities: Sequence[int], branching: Sequence[int]
) -> int:
    total, n = 0, 1
    for b in reversed(branching):
        n *= b
    for level, cap in enumerate(capacities):
        total += cap * n
        if level < len(branching):
            n //= branching[level]
    return total


def _compare(
    scenarios: dict,
    popkill: dict,
    edge_policies: Sequence[str],
    placements: Sequence[str],
) -> dict:
    """The acceptance summary across the grid."""
    latency = {name: s["mean_latency_ms"] for name, s in scenarios.items()}
    copies = {name: s["copies_placed"] for name, s in scenarios.items()}
    onpath_wins = {}
    lcd_copy_reduction = {}
    for policy in edge_policies:
        lce = scenarios.get(f"{policy}+LCE")
        if lce is None:
            continue
        rivals = [
            scenarios[f"{policy}+{p}"]
            for p in placements
            if p != "LCE" and f"{policy}+{p}" in scenarios
        ]
        onpath_wins[policy] = any(
            r["mean_latency_ms"] < lce["mean_latency_ms"] for r in rivals
        )
        lcd = scenarios.get(f"{policy}+LCD")
        if lcd is not None:
            lcd_copy_reduction[policy] = lce["copies_placed"] - lcd["copies_placed"]
    return {
        "mean_latency_ms": latency,
        "copies_placed": copies,
        "best_cell": min(latency, key=latency.get),
        # acceptance: LCD or probabilistic beats LCE at equal capacity
        "onpath_beats_lce": onpath_wins,
        "onpath_beats_lce_any": any(onpath_wins.values()),
        # CI smoke: LCD places strictly fewer copies than LCE
        "lcd_copy_reduction": lcd_copy_reduction,
        "popkill_served_error_rate": popkill["served_error_rate"],
        "popkill_dip_depth": popkill.get("dip_depth"),
        "errors_zero": all(s["errors"] == 0 for s in scenarios.values())
        and popkill["errors"] == 0,
        "unhandled_exceptions_zero": all(
            s["unhandled_exceptions"] == 0 for s in scenarios.values()
        )
        and popkill["unhandled_exceptions"] == 0,
    }


def config_from_doc(doc: dict) -> dict:
    """Rebuild ``run_net_bench`` keywords from a persisted doc.

    Derived fields (capacities, victim, offsets) are recomputed by the
    run, not replayed — same contract as the cluster bench.
    """
    cfg = dict(doc["manifest"]["extra"]["net"])
    for derived in (
        "capacities",
        "total_capacity_bytes",
        "victim",
        "kill_at",
        "restart_at",
    ):
        cfg.pop(derived, None)
    return cfg


def write_net_doc(doc: dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return str(path)


def format_net_doc(doc: dict) -> str:
    """Human-readable summary of one net-bench document."""
    cfg = doc["config"]
    cmp_ = doc["comparison"]
    lines = [
        (
            f"net bench — '{cfg['trace']}' x {cfg['n_requests']:,} requests over "
            f"tree{tuple(cfg['branching'])} "
            f"({cfg['total_capacity_bytes'] / 1e6:.1f} MB total, "
            f"upper={cfg['upper_policy']}), {cfg['n_receivers']} receivers "
            f"(beta={cfg['receiver_beta']})"
        ),
    ]
    for name in sorted(doc["scenarios"]):
        s = doc["scenarios"][name]
        tiers = " ".join(
            f"{t}={m:.3f}" for t, m in sorted(s["tier_miss_ratios"].items())
        )
        lines.append(
            f"  {name:<12} hit={s['hit_ratio']:.4f} "
            f"latency={s['mean_latency_ms']:7.3f} ms "
            f"copies={s['copies_placed']:,} miss[{tiers}]"
        )
    pk = doc["popkill"]
    rec = pk.get("recovery_requests")
    lines.append(
        f"  popkill[{pk['grid_cell']}] kill {pk['victim']}: "
        f"dip={pk.get('dip_depth', 0.0):.4f} "
        f"recovery={rec if rec is not None else '-'} req "
        f"served_error_rate={pk['served_error_rate']:.4f}"
    )
    lines.append(
        f"  best={cmp_['best_cell']} · on-path beats LCE: "
        f"{cmp_['onpath_beats_lce_any']} · LCD copy reduction: "
        f"{cmp_['lcd_copy_reduction']}"
    )
    lines.append("  per-edge receiver WSS (SHARDS):")
    for row in doc["edge_wss"]:
        lines.append(
            f"    {row['edge']:<7} {row['receivers']:2d} receivers "
            f"rate={row['rate']:.3f} requests={row['requests']:,} "
            f"wss≈{row['wss_lower_bytes'] / 1e6:.1f}–"
            f"{row['wss_upper_bytes'] / 1e6:.1f} MB"
        )
    return "\n".join(lines)
