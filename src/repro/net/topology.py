"""Cache-network topologies: named cache nodes, weighted links, origin.

A :class:`Topology` is the static description of a CDN's cache graph —
which PoPs exist, how big each cache is and which policy it runs (via the
unified :mod:`repro.cache.registry`), and which directed links connect
them on the way to the origin.  It is pure data: the
:class:`~repro.net.engine.NetEngine` materialises policies and replays
traffic; the topology only answers *structure* questions (validation,
routing paths, tier labels) and round-trips through ``as_dict`` /
``from_dict`` so a ``BENCH_net.json`` manifest can rebuild the exact
graph that produced it.

Structure rules (enforced by :meth:`Topology.validate`, run on freeze):

* the graph of cache nodes plus the implicit ``origin`` sink is a DAG —
  a routing loop would mean a request that never terminates;
* every cache node reaches ``origin`` along uplinks — a stranded node
  could neither fetch nor be filled;
* ``origin`` has no uplinks (it is the sink) and at least one node feeds
  into it.

Nodes may have **multiple** uplinks (fat-tree aggregation); routing picks
one deterministic next hop per ``(node, key)`` with a splitmix64 hash, so
the same key always takes the same path from the same edge — cache
affinity, exactly like consistent-hash request routing in a real fleet.

Builders:

* :func:`tree_topology` — a balanced edge→…→root tree (the classic
  3-tier CDN is ``branching=(4, 2)``: 8 edges, 2 regionals, 1 root);
* :func:`fat_tree_topology` — every node of one tier uplinks to *every*
  node of the next (path diversity, per-key spread);
* :meth:`Topology.add_node` / :meth:`Topology.add_link` — arbitrary DAGs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.registry import resolve_policy

__all__ = [
    "ORIGIN",
    "Link",
    "NetNode",
    "Topology",
    "tree_topology",
    "fat_tree_topology",
]

#: Reserved name of the implicit origin sink; not a cache node.
ORIGIN = "origin"

_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer (scalar) — the repo's standard spatial hash."""
    x &= _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x


@dataclass(frozen=True)
class NetNode:
    """One cache PoP: a capacity, a policy name, and a tier label.

    ``tier`` groups nodes for accounting (``edge`` / ``mid1`` / ``root``
    from the builders; anything the caller likes on hand-built graphs) —
    the engine reports hit ratios per tier, not per node, because that is
    the unit the paper's multi-tier question is posed at.
    """

    name: str
    capacity: int
    policy: str = "LRU"
    policy_kwargs: dict = field(default_factory=dict)
    tier: str = "edge"

    def __post_init__(self) -> None:
        if self.name == ORIGIN:
            raise ValueError(f"{ORIGIN!r} is reserved for the origin sink")
        if self.capacity <= 0:
            raise ValueError(f"node {self.name!r}: capacity must be > 0")
        # Fail fast on unknown policy names (KeyError lists the registry).
        resolve_policy(self.policy)

    def as_dict(self) -> dict:
        doc = {
            "name": self.name,
            "capacity": self.capacity,
            "policy": self.policy,
            "tier": self.tier,
        }
        if self.policy_kwargs:
            doc["policy_kwargs"] = dict(self.policy_kwargs)
        return doc


@dataclass(frozen=True)
class Link:
    """A directed uplink ``src -> dst`` with propagation latency and
    bandwidth.  A hop over the link costs ``latency_ms`` each way plus
    ``size / bandwidth`` transfer time on the response leg."""

    src: str
    dst: str
    latency_ms: float = 1.0
    gbps: float = 10.0

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError(f"link {self.src}->{self.dst}: latency_ms must be >= 0")
        if self.gbps <= 0:
            raise ValueError(f"link {self.src}->{self.dst}: gbps must be > 0")

    def transfer_ms(self, size: int) -> float:
        """Response transfer time for ``size`` bytes, in milliseconds."""
        return size * 8.0 / (self.gbps * 1e9) * 1e3

    def as_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "latency_ms": self.latency_ms,
            "gbps": self.gbps,
        }


class Topology:
    """A DAG of cache nodes draining into the implicit ``origin`` sink.

    Build with :meth:`add_node` / :meth:`add_link` (or the builders),
    then call :meth:`validate` — the engine does so on construction, so a
    cyclic or stranded graph fails before any traffic flows.
    """

    def __init__(self, seed: int = 0):
        self.nodes: Dict[str, NetNode] = {}
        self._uplinks: Dict[str, List[Link]] = {}
        self.seed = int(seed)
        self._salt = _mix64(self.seed ^ 0x6E65745F746F706F)  # "net_topo"
        # Per-node routing salt — crc32, NOT builtin hash(), which is
        # process-salted on strings and would re-route keys between runs.
        self._node_salt: Dict[str, int] = {}

    # -- construction ------------------------------------------------------
    def add_node(
        self,
        name: str,
        capacity: int,
        policy: str = "LRU",
        policy_kwargs: Optional[dict] = None,
        tier: str = "edge",
    ) -> "Topology":
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        self.nodes[name] = NetNode(
            name, int(capacity), policy, dict(policy_kwargs or {}), tier
        )
        self._uplinks.setdefault(name, [])
        self._node_salt[name] = _mix64(zlib.crc32(name.encode()) ^ self._salt)
        return self

    def add_link(
        self, src: str, dst: str, latency_ms: float = 1.0, gbps: float = 10.0
    ) -> "Topology":
        if src not in self.nodes:
            raise ValueError(f"link source {src!r} is not a node")
        if src == dst:
            raise ValueError(f"self-link on {src!r}")
        if dst != ORIGIN and dst not in self.nodes:
            raise ValueError(f"link target {dst!r} is neither a node nor {ORIGIN!r}")
        if any(link.dst == dst for link in self._uplinks[src]):
            raise ValueError(f"duplicate link {src!r} -> {dst!r}")
        self._uplinks[src].append(Link(src, dst, float(latency_ms), float(gbps)))
        return self

    # -- structure queries -------------------------------------------------
    def uplinks(self, name: str) -> Tuple[Link, ...]:
        return tuple(self._uplinks.get(name, ()))

    @property
    def edge_nodes(self) -> List[str]:
        """Nodes nothing links *to* — where receivers attach (sorted)."""
        targets = {
            link.dst for links in self._uplinks.values() for link in links
        }
        return sorted(name for name in self.nodes if name not in targets)

    def tiers(self) -> Dict[str, List[str]]:
        """``{tier: [node names]}`` in sorted order."""
        out: Dict[str, List[str]] = {}
        for name in sorted(self.nodes):
            out.setdefault(self.nodes[name].tier, []).append(name)
        return out

    def total_capacity(self) -> int:
        return sum(node.capacity for node in self.nodes.values())

    def validate(self) -> None:
        """Raise ``ValueError`` unless the graph is a DAG draining into
        ``origin`` with every cache node on some path to it."""
        if not self.nodes:
            raise ValueError("topology has no cache nodes")
        # DFS from every node: cycle detection + origin reachability in one
        # pass (the graph is small — PoP counts, not request counts).
        reaches: Dict[str, bool] = {ORIGIN: True}
        state: Dict[str, int] = {}  # 1 = on stack, 2 = done

        def visit(name: str) -> bool:
            if name == ORIGIN:
                return True
            mark = state.get(name)
            if mark == 1:
                raise ValueError(f"routing cycle through {name!r}")
            if mark == 2:
                return reaches[name]
            state[name] = 1
            ok = False
            for link in self._uplinks.get(name, ()):
                if visit(link.dst):
                    ok = True
            state[name] = 2
            reaches[name] = ok
            return ok

        for name in self.nodes:
            if not visit(name):
                raise ValueError(f"node {name!r} has no path to {ORIGIN!r}")
        if not self.edge_nodes:
            raise ValueError("every node is linked to; no edge to attach receivers")

    # -- routing -----------------------------------------------------------
    def next_hop(self, name: str, key: int) -> Link:
        """The deterministic uplink a ``key`` takes out of ``name``.

        Single uplink: that link.  Multiple (fat-tree): a splitmix64 hash
        of ``(node, key)`` picks one, so a key's route is stable across
        the whole replay — cache affinity without shared state.
        """
        links = self._uplinks[name]
        if len(links) == 1:
            return links[0]
        h = _mix64(key ^ self._node_salt[name])
        return links[h % len(links)]

    def path(self, edge: str, key: int) -> List[Link]:
        """Links from ``edge`` up to ``origin`` for ``key``, in order.

        The node sequence is ``[edge] + [l.dst for l in path]`` — the last
        hop always lands on ``origin``.  Validation guarantees termination;
        the walk still bounds itself at the node count as a belt-and-braces
        guard against post-validate mutation.
        """
        if edge not in self.nodes:
            raise ValueError(f"unknown edge node {edge!r}")
        hops: List[Link] = []
        at = edge
        for _ in range(len(self.nodes) + 1):
            if at == ORIGIN:
                return hops
            link = self.next_hop(at, key)
            hops.append(link)
            at = link.dst
        raise ValueError(f"path from {edge!r} exceeded node count (cycle?)")

    # -- (de)serialisation -------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "nodes": [self.nodes[name].as_dict() for name in sorted(self.nodes)],
            "links": [
                link.as_dict()
                for name in sorted(self._uplinks)
                for link in self._uplinks[name]
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Topology":
        topo = cls(seed=doc.get("seed", 0))
        for n in doc["nodes"]:
            topo.add_node(
                n["name"],
                n["capacity"],
                n.get("policy", "LRU"),
                n.get("policy_kwargs"),
                n.get("tier", "edge"),
            )
        for link in doc["links"]:
            topo.add_link(
                link["src"], link["dst"], link["latency_ms"], link["gbps"]
            )
        topo.validate()
        return topo

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        n_links = sum(len(v) for v in self._uplinks.values())
        return f"Topology({len(self.nodes)} nodes, {n_links} links)"


#: Default per-tier link latencies for the builders, edge-side first —
#: approximate public CDN numbers: edge->regional ~8 ms, regional->root
#: ~20 ms, last tier -> origin ~60 ms (the origin link is always the
#: final entry, reused if the tree is deeper than the table).
TIER_LATENCY_MS = (8.0, 20.0, 60.0)


def _tier_name(level: int, depth: int) -> str:
    if level == 0:
        return "edge"
    if level == depth - 1:
        return "root"
    return f"mid{level}"


def _build_tiers(
    branching: Sequence[int],
    capacities: Sequence[int],
    policies: Sequence[str],
    latencies: Optional[Sequence[float]],
    seed: int,
) -> Tuple[Topology, List[List[str]], List[float]]:
    """Shared node layout for the tree / fat-tree builders.

    ``branching[i]`` is the fan-in from tier ``i`` to tier ``i+1``; the
    top tier has one node per trailing product, bottoming out at 1 root.
    ``capacities`` / ``policies`` are per-tier (edge first).
    """
    depth = len(branching) + 1
    if len(capacities) != depth:
        raise ValueError(
            f"need {depth} per-tier capacities for branching {tuple(branching)}, "
            f"got {len(capacities)}"
        )
    if len(policies) != depth:
        raise ValueError(
            f"need {depth} per-tier policies for branching {tuple(branching)}, "
            f"got {len(policies)}"
        )
    lats = list(latencies) if latencies is not None else list(TIER_LATENCY_MS)
    while len(lats) < depth:
        lats.append(lats[-1])
    counts: List[int] = []
    n = 1
    for b in reversed(branching):
        n *= b
    for level in range(depth):
        counts.append(n)
        if level < len(branching):
            if branching[level] < 1:
                raise ValueError(f"branching factors must be >= 1, got {branching}")
            n //= branching[level]
    topo = Topology(seed=seed)
    names: List[List[str]] = []
    for level, count in enumerate(counts):
        tier = _tier_name(level, depth)
        level_names = [f"{tier}{i}" for i in range(count)]
        for name in level_names:
            topo.add_node(
                name, capacities[level], policies[level], tier=tier
            )
        names.append(level_names)
    return topo, names, lats


def tree_topology(
    branching: Sequence[int] = (4, 2),
    capacities: Sequence[int] = (1 << 20, 2 << 20, 4 << 20),
    policies: Sequence[str] = ("LRU", "LRU", "LRU"),
    latencies_ms: Optional[Sequence[float]] = None,
    origin_ms: float = 60.0,
    gbps: float = 10.0,
    seed: int = 0,
) -> Topology:
    """A balanced tree: ``branching=(4, 2)`` gives 8 edges -> 2 mids -> 1
    root -> origin.  Each child uplinks to exactly one parent (children
    are dealt to parents in order)."""
    topo, names, lats = _build_tiers(
        branching, capacities, policies, latencies_ms, seed
    )
    for level, b in enumerate(branching):
        children, parents = names[level], names[level + 1]
        for i, child in enumerate(children):
            topo.add_link(child, parents[i // b], lats[level], gbps)
    for top in names[-1]:
        topo.add_link(top, ORIGIN, origin_ms, gbps)
    topo.validate()
    return topo


def fat_tree_topology(
    branching: Sequence[int] = (4, 2),
    capacities: Sequence[int] = (1 << 20, 2 << 20, 4 << 20),
    policies: Sequence[str] = ("LRU", "LRU", "LRU"),
    latencies_ms: Optional[Sequence[float]] = None,
    origin_ms: float = 60.0,
    gbps: float = 10.0,
    seed: int = 0,
) -> Topology:
    """Same tiers as :func:`tree_topology`, but every node uplinks to
    *every* node of the next tier — per-key hashing then spreads one
    edge's keyspace across all parents (path diversity)."""
    topo, names, lats = _build_tiers(
        branching, capacities, policies, latencies_ms, seed
    )
    for level in range(len(branching)):
        for child in names[level]:
            for parent in names[level + 1]:
                topo.add_link(child, parent, lats[level], gbps)
    for top in names[-1]:
        topo.add_link(top, ORIGIN, origin_ms, gbps)
    topo.validate()
    return topo
