"""Shim for environments whose pip lacks the `wheel` package (editable
installs via `pip install -e .` fall back to this legacy path)."""
from setuptools import setup

setup()
