"""Bench: regenerate Figure 10 (replacement algorithms, miss ratio)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig10_replacement


def test_fig10(benchmark, scale):
    rows = run_once(benchmark, fig10_replacement.main, scale)
    for wl in ("CDN-T", "CDN-W", "CDN-A"):
        cell = {r["policy"]: r["miss_ratio"] for r in rows if r["trace"] == wl}
        assert cell["Belady"] <= min(cell.values()) + 1e-9
        # SCIP leads or stays within 4 pts of the best replacement policy
        # (paper: SCIP beats GL-Cache, the best comparator, by 1.38 pts;
        # in our reproduction CACHEUS and LRB lead CDN-A by ~3.5 pts —
        # a documented partial, DESIGN.md §8).
        best = min(v for k, v in cell.items() if k != "Belady")
        assert cell["SCIP"] <= best + 0.04, wl
        # SCIP strictly beats plain LRU (its host victim policy).
        assert cell["SCIP"] < cell["LRU"], wl
