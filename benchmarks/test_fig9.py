"""Bench: regenerate Figure 9 (insertion-policy resource profiles)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig9_resources_ins

SIMPLE = ("LIP", "DIP", "PIPP", "SHiP", "ASC-IP")
LEARNED = ("DGIPPR", "DTA", "DAAIP")


def test_fig9(benchmark, scale):
    rows = run_once(benchmark, fig9_resources_ins.main, scale)
    cpu = {r["policy"]: r["cpu_us_per_request"] for r in rows}
    mem = {r["policy"]: r["metadata_bytes"] for r in rows}
    tps = {r["policy"]: r["tps"] for r in rows}
    # SCIP's CPU sits between the simple heuristics and the heaviest
    # learning-based insertion policy (the paper's ordering).
    simple_avg = sum(cpu[p] for p in SIMPLE) / len(SIMPLE)
    assert cpu["SCIP"] >= simple_avg * 0.8
    assert cpu["SCIP"] <= max(cpu[p] for p in LEARNED) * 1.5
    # SCIP's memory overhead over LIP is bounded metadata, not a blow-up.
    assert mem["SCIP"] <= mem["LIP"] * 4 + 2_000_000
    # Everything sustains a usable request rate.
    assert all(v > 1_000 for v in tps.values())
