"""Bench: regenerate Figure 11 (replacement-algorithm resource profiles)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig11_resources_repl


def test_fig11(benchmark, scale):
    rows = run_once(benchmark, fig11_resources_repl.main, scale)
    cpu = {r["policy"]: r["cpu_us_per_request"] for r in rows}
    tps = {r["policy"]: r["tps"] for r in rows}
    # SCIP costs more than plain LRU but far less than the heavyweight
    # learned policies (paper Figure 11's ordering).
    assert cpu["SCIP"] >= cpu["LRU"] * 0.9
    assert cpu["SCIP"] < cpu["LRB"]
    assert cpu["SCIP"] < cpu["GL-Cache"] * 2
    # TPS ordering mirrors CPU: LRU fastest, LRB slowest of the named set.
    assert tps["LRU"] > tps["LRB"]
    assert tps["SCIP"] > tps["LRB"]
