"""Bench: SCIP design ablations (DESIGN.md §5)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablations(benchmark, scale):
    rows = run_once(benchmark, ablations.main, scale)
    by = {(r["ablation"], r["variant"]): r["miss_ratio"] for r in rows}

    def mr(ablation, prefix):
        return next(v for (a, var), v in by.items() if a == ablation and var.startswith(prefix))

    # History reach: the literal half-cache shadow list underperforms the
    # lifetime-preserving default at simulator scale (DESIGN.md §2).
    assert mr("history", "hf=32") <= mr("history", "hf=0.5") + 0.005
    # All variants stay in a sane band — no knob detonates the policy.
    for (_, variant), v in by.items():
        assert 0.2 < v < 0.95, variant
