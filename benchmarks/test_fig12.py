"""Bench: regenerate Figure 12 (SCIP/ASC-IP enhancement of LRU-K and LRB)."""

from __future__ import annotations

from statistics import mean

from benchmarks.conftest import run_once
from repro.experiments import fig12_enhance


def test_fig12(benchmark, scale):
    rows = run_once(benchmark, fig12_enhance.main, scale)
    workloads = {r["trace"] for r in rows}
    deltas_lruk, deltas_lrb = [], []
    for wl in workloads:
        mr = {r["policy"]: r["miss_ratio"] for r in rows if r["trace"] == wl}
        deltas_lruk.append(mr["LRU-K"] - mr["LRU-K-SCIP"])
        deltas_lrb.append(mr["LRB"] - mr["LRB-SCIP"])
    # SCIP enhancement helps both hosts on average (paper: −8.05 pts on
    # LRU-K, −0.44 pts on LRB), and the LRU-K gain exceeds the LRB gain
    # (a learned victim selector leaves less on the table).
    assert mean(deltas_lruk) > 0
    assert mean(deltas_lrb) > -0.005
    assert mean(deltas_lruk) > mean(deltas_lrb) - 0.005
