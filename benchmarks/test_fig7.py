"""Bench: regenerate Figure 7 (SCIP vs SCI, seed-averaged)."""

from __future__ import annotations

from statistics import mean

from benchmarks.conftest import run_once
from repro.experiments import fig7_scip_vs_sci


def test_fig7(benchmark, scale):
    rows = run_once(benchmark, fig7_scip_vs_sci.main, scale)
    assert len(rows) == 3
    # Direction: SCIP at least matches SCI on average across workloads.
    # (EXPERIMENTS.md documents that our synthetic P-ZRO volume yields
    # sub-point gaps versus the paper's 1.6–5.3 points.)
    assert mean(r["gap"] for r in rows) > -0.01
    for r in rows:
        assert 0.0 < r["scip_miss_ratio"] < 1.0
