"""Bench: regenerate Figure 8 (insertion policies × workloads × sizes)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig8_insertion


def rows_for(rows, **kv):
    return [r for r in rows if all(r[k] == v for k, v in kv.items())]


def test_fig8(benchmark, scale):
    rows = run_once(benchmark, fig8_insertion.main, scale)
    workloads = {r["trace"] for r in rows}
    for wl in workloads:
        wl_rows = rows_for(rows, trace=wl)
        fractions = sorted({r["cache_fraction"] for r in wl_rows})
        for i, frac in enumerate(fractions):
            cell = rows_for(wl_rows, cache_fraction=frac)
            mr = {r["policy"]: r["miss_ratio"] for r in cell}
            # Belady is the floor.
            assert mr["Belady"] <= min(mr.values()) + 1e-9
            # SCIP beats LIP decisively and leads or nearly leads the field:
            # strict at the paper's default 64 GB-equivalent (where its
            # deltas are quoted), a small band at the larger sizes (the
            # paper's 128/256 GB panels compress all policies together).
            assert mr["SCIP"] < mr["LIP"]
            best = min(v for k, v in mr.items() if k != "Belady")
            if i == 0:
                assert mr["SCIP"] <= best + 0.02, (wl, frac)
            else:
                # At the 128/256 GB equivalents the size-threshold ASC-IP
                # overtakes on two workloads (DESIGN.md §8); SCIP must
                # still stay within a band of the field or at worst match
                # the recency family it replaces (DIP ≈ adaptive LRU).
                assert (
                    mr["SCIP"] <= best + 0.04 or mr["SCIP"] <= mr["DIP"] + 0.005
                ), (wl, frac)
        # Larger caches help every policy (spot-check with SCIP).
        scip_curve = [
            rows_for(wl_rows, cache_fraction=f, policy="SCIP")[0]["miss_ratio"]
            for f in fractions
        ]
        assert scip_curve[-1] < scip_curve[0]
