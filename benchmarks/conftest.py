"""Benchmark-suite configuration.

Each benchmark regenerates one paper table/figure at the ``bench`` scale
(60 k requests) through the corresponding :mod:`repro.experiments` module,
times the full regeneration with ``benchmark.pedantic`` (one round — these
are macro-benchmarks of whole experiments, not micro-loops), prints the
paper-style table, and asserts the figure's headline *shape*.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

SCALE = "bench"


def pytest_collection_modifyitems(config, items):
    """Every figure bench is a macro-benchmark: mark slow so CI's
    ``-m "not slow"`` deselects them even when benchmarks/ is collected."""
    slow = pytest.mark.slow
    for item in items:
        item.add_marker(slow)


@pytest.fixture(scope="session")
def scale():
    return SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full experiment run and return its rows."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
