"""Bench: regenerate Table 1 (workload summaries)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import table1_workloads


def test_table1(benchmark, scale):
    rows = run_once(benchmark, table1_workloads.main, scale)
    ratio = {r["workload"]: r["req_per_obj"] for r in rows}
    # Table 1's reuse ordering: CDN-W ≫ CDN-T > CDN-A.
    assert ratio["CDN-W"] > ratio["CDN-T"] > ratio["CDN-A"]
    # Mean object sizes in the paper's 30–45 KB band (±2×).
    for r in rows:
        assert 15 < r["mean_size_KB"] < 150
