"""Bench: regenerate Figure 3 (fractional oracle treatment curves)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig3_theoretical


def test_fig3(benchmark, scale):
    rows = run_once(benchmark, fig3_theoretical.main, scale)
    by_wl = {}
    for r in rows:
        by_wl.setdefault(r["workload"], []).append(r)
    subadditive = 0
    for wl, series in by_wl.items():
        series.sort(key=lambda r: r["treated_fraction"])
        full = series[-1]
        # MR(ZRO) < MR(P-ZRO); MR(both) best — §2.2's ordering.
        assert full["mr_treat_zro"] <= full["mr_treat_pzro"] + 1e-9, wl
        assert full["mr_treat_both"] <= full["mr_treat_zro"] + 1e-9, wl
        # Monotone decrease with treated fraction (±1 pt replay noise).
        zro_curve = [r["mr_treat_zro"] for r in series]
        assert zro_curve[-1] <= zro_curve[0] + 0.01, wl
        # Sub-additivity of gains (§2.2).
        base = full["mr_lru"]
        gz = base - full["mr_treat_zro"]
        gp = base - full["mr_treat_pzro"]
        gb = base - full["mr_treat_both"]
        subadditive += gz + gp > gb - 1e-9
    # The paper reports sub-additivity on all traces; on CDN-W our combined
    # re-labelling is *super*-additive (the ZRO treatment exposes extra
    # treatable P-ZROs) — a documented partial, so require 2 of 3.
    assert subadditive >= 2
