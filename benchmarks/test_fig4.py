"""Bench: regenerate Figure 4 (model accuracy on ZRO / P-ZRO / both)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig4_models

MODELS = ["LinReg", "LogReg", "SVM", "NN", "GBM", "MAB"]


def test_fig4(benchmark, scale):
    rows = run_once(benchmark, fig4_models.main, scale)
    both = [r for r in rows if r["task"] == "both"]
    # MAB leads the combined task on at least 2 of the 3 workloads.
    wins = sum(r["MAB"] >= max(r[m] for m in MODELS) - 1e-9 for r in both)
    assert wins >= 2
    # ZRO identification is easier than P-ZRO on model average.  CDN-W is
    # a documented partial (EXPERIMENTS.md): its ZRO traffic is dominated
    # by normal-sized recurring sweeps that none of the stateless features
    # separate, so the inversion is allowed there.
    easier = 0
    for wl in ("CDN-T", "CDN-W", "CDN-A"):
        z = next(r for r in rows if r["workload"] == wl and r["task"] == "zro")
        p = next(r for r in rows if r["workload"] == wl and r["task"] == "pzro")
        avg = lambda r: sum(r[m] for m in MODELS) / len(MODELS)
        easier += avg(z) > avg(p) - 0.05
    assert easier >= 2
