"""Bench: regenerate Figure 1 (ZRO/P-ZRO proportions + oracle treatment)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig1_zro


def test_fig1(benchmark, scale):
    rows = run_once(benchmark, fig1_zro.main, scale)
    for r in rows:
        # Treatment never hurts and both-treatment dominates (Fig 1 b/e).
        assert r["miss_ratio_treat_zro"] <= r["miss_ratio_lru"] + 1e-9
        assert r["miss_ratio_treat_both"] <= r["miss_ratio_treat_zro"] + 1e-9
        # ZROs are a material share of misses everywhere (Fig 1 a).
        assert r["zro_share_of_misses"] > 0.3
    # CDN-A posts the worst LRU miss ratios at the coarser cache sizes
    # (Fig 1 b); at the tiniest fractions every workload saturates and the
    # ordering is dominated by absolute cache size.
    for frac in (0.05, 0.10):
        sized = [r for r in rows if r["cache_fraction"] == frac]
        mr = {r["workload"]: r["miss_ratio_lru"] for r in sized}
        assert mr["CDN-A"] == max(mr.values()), (frac, mr)
