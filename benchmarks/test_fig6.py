"""Bench: regenerate Figure 6 / §5.2 (TDC deployment of SCIP)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig6_tdc


def test_fig6(benchmark, scale):
    out = run_once(benchmark, fig6_tdc.main, scale)
    # All three monitoring metrics improve after the rollout.
    assert out["after_bto_ratio"] < out["before_bto_ratio"]
    assert out["bto_gbps_rel_change"] < 0
    assert out["latency_rel_change"] < 0
    # Relative magnitudes in the paper's ballpark (tens of percent;
    # paper: BW −25.7 %, latency −26.1 %).
    assert out["bto_gbps_rel_change"] < -0.05
    assert out["latency_rel_change"] < -0.05
