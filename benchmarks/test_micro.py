"""Micro-benchmarks of the hot-path components.

Unlike the figure benches (which time whole experiments), these measure the
per-operation costs that the paper's efficiency claims rest on: O(1) queue
ops, O(1) ghost-list ops, the per-request cost of LRU vs SCIP (the paper:
"negligible additional overhead"), and the ML substrate's fit/predict.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cache.lru import LRUCache
from repro.cache.queue import LinkedQueue, Node
from repro.core.history import HistoryList
from repro.core.scip import SCIPCache
from repro.ml.gbm import GBMRegressor
from repro.sim.request import Request


@pytest.fixture(scope="module")
def requests_100k():
    rng = random.Random(1)
    return [
        Request(i, min(int(rng.paretovariate(1.1)), 5_000), rng.randint(1, 64_000))
        for i in range(100_000)
    ]


def test_queue_push_pop(benchmark):
    def run():
        q = LinkedQueue()
        nodes = [Node(i, 1) for i in range(10_000)]
        for n in nodes:
            q.push_mru(n)
        for n in nodes[:5_000]:
            q.move_to_mru(n)
        while q:
            q.pop_lru()

    benchmark(run)


def test_history_list_ops(benchmark):
    def run():
        h = HistoryList(1_000_000)
        for i in range(20_000):
            h.add(i, 100)
            if i % 3 == 0:
                h.delete(i - 10)

    benchmark(run)


def test_lru_request_throughput(benchmark, requests_100k):
    def run():
        p = LRUCache(50_000_000)
        for r in requests_100k:
            p.request(r)
        return p.stats.miss_ratio

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_scip_request_throughput(benchmark, requests_100k):
    """The paper's 'negligible additional overhead' claim: SCIP's per-
    request cost must stay within a small factor of plain LRU's."""

    def run():
        p = SCIPCache(50_000_000)
        for r in requests_100k:
            p.request(r)
        return p.stats.miss_ratio

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_gbm_fit_predict(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(2_000, 10))
    y = X[:, 0] * 2 + np.sin(X[:, 1])

    def run():
        model = GBMRegressor(n_estimators=16, max_depth=3).fit(X, y)
        return model.predict(X[:256]).sum()

    benchmark.pedantic(run, rounds=1, iterations=1)
