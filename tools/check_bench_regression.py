#!/usr/bin/env python3
"""Compare one numeric metric between two bench JSON docs; exit 1 on a drop.

Usage::

    python tools/check_bench_regression.py \
        --baseline BENCH_engine.committed.json \
        --candidate BENCH_engine.json \
        --schema 1 \
        --metric results.headline.tps_batch \
        --max-drop 0.15

``--metric`` is a dotted path into the JSON document (list indices allowed:
``results.0.tps``) and is repeatable — every given metric is checked and
the worst verdict wins, so one invocation can gate several headline
numbers of the same doc.  The check fails when a candidate value has
dropped by more than ``--max-drop`` (a fraction) relative to the
baseline.  Higher-is-better is assumed; pass ``--lower-is-better`` for
latency-style metrics, where the check instead fails on a >``max-drop``
*increase* (the flag applies to every metric in the invocation).

Bench artifacts are unified envelopes (``repro bench <target>``, schema
:data:`repro.bench.BENCH_RESULT_SCHEMA`): the target's own document lives
under ``results``, so gate metrics address it as ``results.<path>``.
Pass ``--schema N`` to assert both docs carry that top-level envelope
version — the guard that fails **loudly** (exit 2, naming the file and
the schema it actually has) when a layout migration would otherwise make
a dotted path silently resolve against the wrong shape.
"""

from __future__ import annotations

import argparse
import json
import sys


def resolve(doc, dotted: str):
    node = doc
    for part in dotted.split("."):
        if isinstance(node, list):
            node = node[int(part)]
        elif isinstance(node, dict):
            if part not in node:
                raise KeyError(f"{dotted!r}: no key {part!r} (have {sorted(node)})")
            node = node[part]
        else:
            raise KeyError(f"{dotted!r}: {part!r} reached a leaf {node!r}")
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise TypeError(f"{dotted!r} is {type(node).__name__}, not a number")
    return float(node)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, help="committed reference JSON")
    ap.add_argument("--candidate", required=True, help="freshly measured JSON")
    ap.add_argument(
        "--metric",
        required=True,
        action="append",
        help="dotted path, e.g. headline.tps_batch (repeatable; all must pass)",
    )
    ap.add_argument(
        "--max-drop",
        type=float,
        default=0.15,
        help="tolerated relative regression (fraction, default 0.15)",
    )
    ap.add_argument(
        "--lower-is-better",
        action="store_true",
        help="treat increases (not drops) as regressions",
    )
    ap.add_argument(
        "--schema",
        type=int,
        default=None,
        help="require this top-level 'schema' in both docs (exit 2 on mismatch)",
    )
    args = ap.parse_args(argv)
    if not 0.0 < args.max_drop < 1.0:
        print(f"--max-drop must be in (0, 1), got {args.max_drop}")
        return 2

    try:
        with open(args.baseline) as fh:
            base_doc = json.load(fh)
        with open(args.candidate) as fh:
            cand_doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot compare: {exc}")
        return 2

    if args.schema is not None:
        for label, path, doc in (
            ("baseline", args.baseline, base_doc),
            ("candidate", args.candidate, cand_doc),
        ):
            have = doc.get("schema") if isinstance(doc, dict) else None
            if have != args.schema:
                print(
                    f"schema mismatch: {label} {path} has schema {have!r}, "
                    f"expected {args.schema} — refusing to compare metrics "
                    "against the wrong document layout"
                )
                return 2

    failed = False
    for metric in args.metric:
        try:
            base = resolve(base_doc, metric)
            cand = resolve(cand_doc, metric)
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            print(f"cannot compare: {exc}")
            return 2
        if base <= 0:
            print(f"baseline {metric} is {base}; nothing to compare against")
            return 2
        change = (cand - base) / base
        regression = -change if not args.lower_is_better else change
        verdict = "FAIL" if regression > args.max_drop else "ok"
        failed = failed or verdict == "FAIL"
        print(
            f"{metric}: baseline {base:,.2f} -> candidate {cand:,.2f} "
            f"({change:+.1%}; tolerated regression {args.max_drop:.0%}) {verdict}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
