#!/usr/bin/env python3
"""Policy shoot-out: the paper's Figure 8/10 comparison on your machine.

Runs SCIP against the classic baselines, the insertion-policy comparators
and the learned replacement policies on all three CDN workload profiles,
and prints a miss-ratio leaderboard per workload (Belady = the unbeatable
oracle floor).

Run:  python examples/policy_shootout.py [n_requests]
"""

from __future__ import annotations

import sys

from repro.cache import POLICIES
from repro.core import SCICache, SCIPCache
from repro.sim import format_table, run_grid
from repro.traces import make_workload

#: A representative cross-section of the zoo (full sets live in
#: repro.experiments.fig8_insertion / fig10_replacement).
LINEUP = ["Belady", "LRU", "ARC", "S4LRU", "GDSF", "LHD", "ASC-IP", "LRB", "GL-Cache"]

#: The paper's 64 GB equivalents per workload (see experiments.common).
FRACTIONS = {"CDN-T": 0.020, "CDN-W": 0.068, "CDN-A": 0.014}


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    traces = [make_workload(name, n_requests=n) for name in FRACTIONS]

    factories = {name: (lambda cap, c=POLICIES[name]: c(cap)) for name in LINEUP}
    factories["SCIP"] = lambda cap: SCIPCache(cap)
    factories["SCI"] = lambda cap: SCICache(cap)

    rows = run_grid(
        factories, traces, {name: [frac] for name, frac in FRACTIONS.items()}
    )
    print(format_table(rows, row_key="policy", col_key="trace", value_key="miss_ratio"))

    print("\nLeaderboard per workload (lower is better):")
    for trace in traces:
        ranked = sorted(
            (r for r in rows if r["trace"] == trace.name),
            key=lambda r: r["miss_ratio"],
        )
        podium = ", ".join(f"{r['policy']}={r['miss_ratio']:.3f}" for r in ranked[:4])
        print(f"  {trace.name}: {podium}")


if __name__ == "__main__":
    main()
