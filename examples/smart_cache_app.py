#!/usr/bin/env python3
"""Use the library as an actual application cache (not a simulator).

`repro.api.SmartCache` wraps any policy in the zoo behind a dict-like
read-through interface.  This demo builds a fake origin with per-object
latency, serves a CDN-like request stream through SCIP and LRU caches of
the same size, and compares origin traffic and total service time.

Run:  python examples/smart_cache_app.py
"""

from __future__ import annotations

import random
import time

from repro.api import SmartCache
from repro.traces import make_workload


class FakeOrigin:
    """An origin server with size-proportional fetch cost."""

    def __init__(self) -> None:
        self.fetches = 0
        self.bytes = 0

    def fetch(self, key: int, size: int) -> bytes:
        self.fetches += 1
        self.bytes += size
        # Simulate transfer cost without actually sleeping per request.
        return b"\0" * min(size, 1024)


def serve(policy_name: str, trace) -> dict:
    origin = FakeOrigin()
    cache = SmartCache(
        capacity_bytes=int(trace.working_set_size * 0.02), policy=policy_name
    )
    t0 = time.perf_counter()
    for req in trace:
        cache.get_or_load(
            req.key, lambda r=req: origin.fetch(r.key, r.size), size=req.size
        )
    elapsed = time.perf_counter() - t0
    stats = cache.stats()
    return {
        "policy": policy_name,
        "origin_fetches": origin.fetches,
        "origin_GB": origin.bytes / 1e9,
        "hit_ratio": stats["hits"] / stats["requests"],
        "wall_s": elapsed,
    }


def main() -> None:
    trace = make_workload("CDN-T", n_requests=40_000)
    print(f"serving {len(trace):,} requests through a 2%-of-WSS cache\n")
    print(f"{'policy':6s} {'hit ratio':>9s} {'origin fetches':>15s} {'origin GB':>10s}")
    results = [serve(name, trace) for name in ("LRU", "SCIP")]
    for r in results:
        print(f"{r['policy']:6s} {r['hit_ratio']:9.3f} {r['origin_fetches']:15,} "
              f"{r['origin_GB']:10.2f}")
    lru, scip = results
    saved = lru["origin_fetches"] - scip["origin_fetches"]
    print(f"\nSCIP saved {saved:,} origin fetches "
          f"({saved / lru['origin_fetches']:.1%} of LRU's back-to-origin traffic)")


if __name__ == "__main__":
    main()
