#!/usr/bin/env python3
"""Fan a policy × workload × cache-size sweep across all CPU cores.

Experiment grids are embarrassingly parallel; `repro.sim.parallel` ships
each cell (policy name + workload name + fraction) to a process pool where
the worker regenerates its trace deterministically — no multi-megabyte
pickling, bit-identical results to the serial runner.

Run:  python examples/parallel_sweep.py [n_requests]
"""

from __future__ import annotations

import sys
import time

from repro.sim.parallel import run_grid_parallel
from repro.sim.runner import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    policies = ["SCIP", "SCI", "LRU", "ASC-IP", "S4LRU", "GDSF"]
    fractions = {"CDN-T": [0.01, 0.02, 0.04], "CDN-A": [0.007, 0.014, 0.028]}

    t0 = time.perf_counter()
    rows = run_grid_parallel(policies, list(fractions), n, fractions)
    elapsed = time.perf_counter() - t0

    cells = len(rows)
    sim_seconds = sum(r["requests"] / r["tps"] for r in rows)
    print(f"{cells} cells in {elapsed:.1f}s wall "
          f"({sim_seconds:.1f}s of single-core simulation — "
          f"{sim_seconds / elapsed:.1f}× speedup)\n")

    for trace in fractions:
        subset = [r for r in rows if r["trace"] == trace]
        print(f"--- {trace} (miss ratio by cache fraction)")
        print(format_table(subset, row_key="policy", col_key="cache_fraction"))
        print()


if __name__ == "__main__":
    main()
