#!/usr/bin/env python3
"""Use SCIP as a plug-in component (§4 / Figure 12): keep your policy's
victim selection, let SCIP drive insertion and promotion.

Compares LRU-K and LRB with their SCIP-enhanced and ASC-IP-enhanced
variants on a CDN-A (photo-store churn) workload, and demonstrates the
`enhance()` factory — including its refusal of multi-chain hosts, which the
paper defers to future work.

Run:  python examples/enhance_a_policy.py
"""

from __future__ import annotations

from repro.cache import LRBCache, LRUKCache
from repro.core import ASCIPLRB, ASCIPLRUK, SCIPLRB, SCIPLRUK, enhance
from repro.sim import simulate
from repro.traces import make_workload


def main() -> None:
    trace = make_workload("CDN-A", n_requests=60_000)
    cap = int(trace.working_set_size * 0.014)  # the paper's 64 GB equivalent

    lineup = [
        ("LRU-K (host)", LRUKCache(cap)),
        ("LRU-K + ASC-IP", ASCIPLRUK(cap)),
        ("LRU-K + SCIP", SCIPLRUK(cap)),
        ("LRB (host)", LRBCache(cap)),
        ("LRB + ASC-IP", ASCIPLRB(cap)),
        ("LRB + SCIP", SCIPLRB(cap)),
    ]
    print(f"{'variant':18s} {'miss ratio':>11s}")
    results = {}
    for label, policy in lineup:
        res = simulate(policy, trace)
        results[label] = res.miss_ratio
        print(f"{label:18s} {res.miss_ratio:11.4f}")

    for host in ("LRU-K", "LRB"):
        delta = results[f"{host} (host)"] - results[f"{host} + SCIP"]
        print(f"SCIP improves {host} by {delta * 100:+.2f} miss-ratio points")

    # The factory route, with the documented multi-chain refusal.
    policy = enhance("LRU-K", cap)
    print(f"\nenhance('LRU-K', ...) -> {type(policy).__name__} ({policy.name})")
    try:
        enhance("ARC", cap)
    except ValueError as exc:
        print(f"enhance('ARC', ...)  -> ValueError: {exc}")


if __name__ == "__main__":
    main()
