#!/usr/bin/env python3
"""Quickstart: run SCIP on a synthetic CDN workload and compare it to LRU.

This is the 60-second tour of the library:

1. generate a CDN-like trace (Table-1-profiled synthetic workload);
2. build a cache policy sized to a fraction of the working set;
3. replay the trace through the simulation engine;
4. read the miss ratios.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.cache import LRUCache
from repro.core import SCIPCache
from repro.sim import simulate
from repro.traces import make_workload


def main() -> None:
    # 1. A 60k-request workload with the CDN-T (Tencent mixed-content) profile.
    trace = make_workload("CDN-T", n_requests=60_000)
    print(f"trace: {len(trace):,} requests, {trace.unique_objects:,} objects, "
          f"working set {trace.working_set_size / 1e9:.2f} GB")

    # 2. Cache sized at 2 % of the working set — the steep region of the
    #    miss-ratio curve, equivalent to the paper's 64 GB on CDN-T.
    capacity = int(trace.working_set_size * 0.02)

    # 3. Replay through both policies.
    lru = simulate(LRUCache(capacity), trace)
    scip = simulate(SCIPCache(capacity), trace)

    # 4. Results.
    print(f"\n{'policy':8s} {'miss ratio':>11s} {'byte miss':>10s} {'req/s':>10s}")
    for res in (lru, scip):
        print(f"{res.policy:8s} {res.miss_ratio:11.4f} "
              f"{res.byte_miss_ratio:10.4f} {res.tps:10,.0f}")

    saved = (lru.miss_ratio - scip.miss_ratio) * len(trace)
    print(f"\nSCIP served ~{saved:,.0f} requests from cache that LRU sent "
          f"back to the origin.")

    # Peek inside the learned state.
    policy = scip.policy_obj
    print(f"SCIP internals: ω_mru={policy.w_mru:.3f}, λ={policy.learning_rate:.3f}, "
          f"ZRO denials={policy.zro_denials}, P-ZRO demotions={policy.pzro_demotions}")


if __name__ == "__main__":
    main()
