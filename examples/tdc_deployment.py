#!/usr/bin/env python3
"""Reproduce the §5 production story: rolling SCIP onto a live CDN cluster.

Builds the two-layer TDC topology (edge OC nodes in front of data-center DC
nodes in front of the origin), replays a CDN-T workload with LRU everywhere,
hot-swaps SCIP at mid-trace without dropping the resident objects, and
prints the monitoring time series a CDN operator would watch: BTO ratio,
back-to-origin bandwidth, and user latency.

Run:  python examples/tdc_deployment.py
"""

from __future__ import annotations

from repro.tdc import run_deployment
from repro.traces import make_workload


def sparkline(values, width=60) -> str:
    """Render a series as a unicode sparkline."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    step = max(len(values) // width, 1)
    sampled = [
        sum(values[i : i + step]) / len(values[i : i + step])
        for i in range(0, len(values), step)
    ]
    lo, hi = min(sampled), max(sampled)
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled)


def main() -> None:
    trace = make_workload("CDN-T", n_requests=120_000)
    print("running the rollout experiment (LRU → SCIP at the midpoint)...")
    res = run_deployment(trace, bucket_requests=4_000)

    mon = res.cluster.monitor
    print("\nBTO ratio over time     ", sparkline(mon.bto_ratio_series()))
    print("BTO bandwidth over time ", sparkline(mon.bto_gbps_series()))
    print("user latency over time  ", sparkline(mon.latency_series()))
    print(" " * 25 + "^" + " " * 27 + "| SCIP deployed around here")

    print(f"\nBTO ratio     : {res.before_bto_ratio:.3f} → {res.after_bto_ratio:.3f} "
          f"({res.bto_ratio_delta:+.3f})")
    print(f"BTO bandwidth : {res.before_bto_gbps:.3f} → {res.after_bto_gbps:.3f} Gbps "
          f"({res.bto_gbps_rel_change:+.1%}; paper: −25.7 %)")
    print(f"user latency  : {res.before_latency_ms:.1f} → {res.after_latency_ms:.1f} ms "
          f"({res.latency_rel_change:+.1%}; paper: −26.1 %)")

    print("\nper-layer miss ratios:", res.cluster.layer_miss_ratios())
    print(f"cluster inode metadata: {res.cluster.total_inode_bytes() / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
