#!/usr/bin/env python3
"""Build your own workload, analyse its ZRO/P-ZRO structure, and save it.

Shows the full trace toolchain:

1. compose a custom :class:`WorkloadSpec` (every knob documented in
   repro/traces/synthetic.py);
2. run the Figure-1-style oracle analysis: how much of your miss traffic is
   zero-reuse, and what would perfect ZRO/P-ZRO treatment buy you;
3. write the trace in the LRB simulator's text format and read it back.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.traces import WorkloadSpec, generate_trace, reuse_statistics
from repro.traces.analysis import fig1_panel
from repro.traces.io import read_lrb, write_lrb


def main() -> None:
    # 1. A bespoke workload: heavy crawler sweeps, few flash crowds.
    spec = WorkloadSpec(
        n_requests=50_000,
        n_core=3_000,
        one_shot_frac=0.15,
        burst_frac=0.10,
        sweep_frac=0.30,        # lots of periodic revalidation traffic
        sweep_period=8_000,
        sweep_pair_frac=0.6,
        mean_size=24 * 1024,
        storm_duty=0.15,
        seed=42,
        name="my-cdn",
    )
    trace = generate_trace(spec)
    stats = reuse_statistics(trace)
    print(f"{trace.name}: {len(trace):,} requests, "
          f"{trace.unique_objects:,} objects, "
          f"{stats['requests_per_object']:.2f} req/object, "
          f"{stats['one_hit_wonder_rate']:.0%} one-hit wonders")

    # 2. Oracle analysis at two cache sizes.
    print(f"\n{'cache':>6s} {'mr(LRU)':>8s} {'ZRO%miss':>9s} {'PZRO%hit':>9s} "
          f"{'mr(treat both)':>14s}")
    for row in fig1_panel(trace, fractions=(0.01, 0.05)):
        print(f"{row.cache_fraction:6.0%} {row.miss_ratio_lru:8.3f} "
              f"{row.zro_share_of_misses:9.1%} {row.pzro_share_of_hits:9.1%} "
              f"{row.miss_ratio_treat_both:14.3f}")

    # 3. Round-trip through the LRB trace format.
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "my-cdn.tr"
        write_lrb(trace, path)
        back = read_lrb(path)
        print(f"\nwrote {path.name}: {path.stat().st_size / 1e6:.1f} MB, "
              f"re-read {len(back):,} requests, "
              f"round-trip {'OK' if back[0] == trace[0] else 'MISMATCH'}")


if __name__ == "__main__":
    main()
