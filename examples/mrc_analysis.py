#!/usr/bin/env python3
"""Miss-ratio-curve analysis: size your cache before running experiments.

Uses the one-pass Mattson stack algorithm (`repro.traces.mrc`) to compute
the full LRU miss-ratio curve of each CDN workload, prints it as an ASCII
chart, and marks where the paper's 64 GB-equivalent cache sizes sit — the
steep region where insertion-policy intelligence pays.

Run:  python examples/mrc_analysis.py
"""

from __future__ import annotations

from repro.traces import make_workload, miss_ratio_curve

#: The paper's 64 GB equivalents (see repro.experiments.common).
MARKERS = {"CDN-T": 0.020, "CDN-W": 0.068, "CDN-A": 0.014}
FRACTIONS = [0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32]


def bar(value: float, width: int = 46) -> str:
    n = int(value * width)
    return "█" * n + "·" * (width - n)


def main() -> None:
    for name, marker in MARKERS.items():
        trace = make_workload(name, n_requests=50_000)
        wss = trace.working_set_size
        sizes = [max(int(wss * f), 1) for f in FRACTIONS]
        curve = miss_ratio_curve(trace, sizes)
        print(f"\n{name}  (WSS {wss / 1e9:.2f} GB, one Mattson pass over "
              f"{len(trace):,} requests)")
        print(f"{'cache':>7s}  {'miss ratio':>10s}")
        for f, c in zip(FRACTIONS, sizes):
            mark = "  <- paper's 64 GB equivalent" if abs(f - marker) < 0.008 else ""
            print(f"{f:7.1%}  {curve[c]:10.4f}  {bar(curve[c])}{mark}")
        # Local steepness around the marker: what one doubling buys.
        lo = max(int(wss * marker), 1)
        hi = max(int(wss * marker * 2), 1)
        d = miss_ratio_curve(trace, [lo, hi])
        print(f"doubling the cache at the marker buys "
              f"{(d[lo] - d[hi]) * 100:.1f} miss-ratio points")


if __name__ == "__main__":
    main()
